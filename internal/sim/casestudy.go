package sim

import (
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/wallet"
)

// CaseStudy is the §5 / Table 3 coalition, fully wired: BigISP's and
// AirNet's home wallets served on the world network, the six delegations
// in their home wallets, and an AirNet server wallet with a discovery
// agent holding delegation (1).
type CaseStudy struct {
	World *World

	BigISPWallet *wallet.Wallet
	AirNetWallet *wallet.Wallet
	ServerWallet *wallet.Wallet
	Agent        *discovery.Agent

	// D1, D2, D5 are the chain delegations; D3 and D4 are Sheila's support.
	D1, D2, D3, D4, D5 *core.Delegation

	// Query asks: does Maria hold AirNet.access?
	Query wallet.Query

	// BW, Storage, Hours are AirNet's valued attributes, evaluated in §5
	// against bases +Inf, 50, and 60 to 100, 30, and 18.
	BW, Storage, Hours core.AttributeRef
}

// NewCaseStudy builds the §5 initial state (Figure 2(a)) on a world.
func NewCaseStudy(w *World) (*CaseStudy, error) {
	cs := &CaseStudy{World: w}
	w.Ensure("BigISP", "AirNet", "Mark", "Sheila", "Maria", "AirNetServer")

	var err error
	if cs.BigISPWallet, err = w.Serve("wallet.bigisp", "BigISP"); err != nil {
		return nil, err
	}
	if cs.AirNetWallet, err = w.Serve("wallet.airnet", "AirNet"); err != nil {
		return nil, err
	}

	airNetID := w.Identity("AirNet").ID()
	cs.BW = core.AttributeRef{Namespace: airNetID, Name: "BW"}
	cs.Storage = core.AttributeRef{Namespace: airNetID, Name: "storage"}
	cs.Hours = core.AttributeRef{Namespace: airNetID, Name: "hours"}

	bigISPMemberTag := core.DiscoveryTag{
		Home:     "wallet.bigisp",
		AuthRole: core.NewRole(w.Identity("BigISP").ID(), "wallet"),
		TTL:      30 * time.Second,
		Subject:  core.SubjectSearch,
		Object:   core.ObjectNone,
	}
	airNetMemberTag := core.DiscoveryTag{
		Home:     "wallet.airnet",
		AuthRole: core.NewRole(airNetID, "wallet"),
		TTL:      30 * time.Second,
		Subject:  core.SubjectSearch,
		Object:   core.ObjectNone,
	}

	// Home wallets prove their authorization roles (§4.2.1) so verifying
	// agents can check them.
	if err := publishOwnerRole(w, cs.BigISPWallet, "BigISP", "BigISP", "wallet"); err != nil {
		return nil, err
	}
	if err := publishOwnerRole(w, cs.AirNetWallet, "AirNet", "AirNet", "wallet"); err != nil {
		return nil, err
	}

	// Delegation (1): [Maria -> BigISP.member] BigISP.
	if cs.D1, err = w.IssueTagged("[Maria -> BigISP.member] BigISP", nil, &bigISPMemberTag); err != nil {
		return nil, err
	}

	// Delegations (3), (4): Sheila's authority, support for (2).
	if cs.D3, err = w.Issue("[Sheila -> AirNet.mktg] AirNet"); err != nil {
		return nil, err
	}
	if cs.D4, err = w.Issue("[AirNet.mktg -> AirNet.member'] AirNet"); err != nil {
		return nil, err
	}
	sup, err := core.NewProof(core.ProofStep{Delegation: cs.D3}, core.ProofStep{Delegation: cs.D4})
	if err != nil {
		return nil, err
	}

	// Delegation (2): the coalition, modulated (Table 2 example 4 plus the
	// hours multiplier the §5 outcomes require).
	if cs.D2, err = w.IssueTagged(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila",
		&bigISPMemberTag, &airNetMemberTag); err != nil {
		return nil, err
	}
	if err := cs.BigISPWallet.Publish(cs.D2, sup); err != nil {
		return nil, fmt.Errorf("publish (2): %w", err)
	}

	// Delegation (5): [AirNet.member -> AirNet.access with AirNet.BW <= 200].
	if cs.D5, err = w.IssueTagged(
		"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet",
		&airNetMemberTag, nil); err != nil {
		return nil, err
	}
	if err := cs.AirNetWallet.Publish(cs.D5); err != nil {
		return nil, fmt.Errorf("publish (5): %w", err)
	}

	// The AirNet server's trusted local wallet and discovery agent
	// (Figure 2: initially empty except for delegation (1), which Maria's
	// software presents in step 1).
	cs.ServerWallet = w.Wallet("AirNetServer")
	cs.Agent = discovery.NewAgent(discovery.Config{
		Local:  cs.ServerWallet,
		Dialer: w.Net.Dialer(w.Identity("AirNetServer")),
	})
	if err := cs.ServerWallet.Publish(cs.D1); err != nil {
		return nil, fmt.Errorf("publish (1): %w", err)
	}
	cs.Agent.Learn(cs.D1)

	subject, err := w.Subject("Maria")
	if err != nil {
		return nil, err
	}
	object, err := w.Role("AirNet.access")
	if err != nil {
		return nil, err
	}
	cs.Query = wallet.Query{Subject: subject, Object: object}
	return cs, nil
}

// publishOwnerRole grants ownerName the role nsName.role and stores the
// grant in the wallet so ProveRole succeeds.
func publishOwnerRole(w *World, wal *wallet.Wallet, ownerName, nsName, role string) error {
	d, err := w.Issue(fmt.Sprintf("[%s -> %s.%s] %s", ownerName, nsName, role, nsName))
	if err != nil {
		return err
	}
	return wal.Publish(d)
}
