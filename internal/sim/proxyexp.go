package sim

import (
	"context"
	"fmt"
	"time"

	"drbac/internal/proxy"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// ProxyPoint is one row of EXP-S5 (hierarchical validation caches, §6):
// home-wallet network cost with clients attached directly versus through a
// caching proxy, for the same monitored credential and one revocation.
type ProxyPoint struct {
	Clients int
	// FlatHomeMessages/Bytes: home-side traffic with every client attached
	// directly to the home wallet.
	FlatHomeMessages int64
	FlatHomeBytes    int64
	// HierHomeMessages/Bytes: home-side traffic with one proxy attached to
	// the home and all clients attached to the proxy.
	HierHomeMessages int64
	HierHomeBytes    int64
	// EdgeMessages: proxy-to-client traffic in the hierarchical setup.
	EdgeMessages int64
}

// RunProxyExperiment measures EXP-S5 for one client population. Both
// configurations run the same workload: every client direct-queries the
// credential, subscribes to it, and then the issuer revokes it once;
// the run completes when every client has been notified.
func RunProxyExperiment(clients int) (ProxyPoint, error) {
	if clients < 1 {
		return ProxyPoint{}, fmt.Errorf("sim: clients must be positive")
	}
	pt := ProxyPoint{Clients: clients}

	flatMsgs, flatBytes, err := runProxyConfig(clients, false)
	if err != nil {
		return ProxyPoint{}, fmt.Errorf("flat config: %w", err)
	}
	pt.FlatHomeMessages, pt.FlatHomeBytes = flatMsgs, flatBytes

	hierMsgs, hierBytes, err := runProxyConfig(clients, true)
	if err != nil {
		return ProxyPoint{}, fmt.Errorf("hierarchical config: %w", err)
	}
	pt.HierHomeMessages, pt.HierHomeBytes = hierMsgs, hierBytes
	return pt, nil
}

// runProxyConfig measures home-side traffic for one configuration.
func runProxyConfig(clients int, hierarchical bool) (messages, bytes int64, err error) {
	// Two separate networks isolate home-side from edge-side traffic.
	coreNet := transport.NewMemNetwork()
	edgeNet := transport.NewMemNetwork()
	w := NewWorld()
	defer w.Close()
	w.Ensure("Org", "ProxyOp", "User", "Client")

	home := wallet.New(wallet.Config{Owner: w.Identity("Org"), Clock: w.Clock, Directory: w.Dir})
	homeLn, err := coreNet.Listen("home", w.Identity("Org"))
	if err != nil {
		return 0, 0, err
	}
	homeSrv := remote.Serve(home, homeLn)
	defer homeSrv.Close()

	cred, err := w.Issue("[User -> Org.member] Org")
	if err != nil {
		return 0, 0, err
	}
	if err := home.Publish(cred); err != nil {
		return 0, 0, err
	}

	subject, err := w.Subject("User")
	if err != nil {
		return 0, 0, err
	}
	object, err := w.Role("Org.member")
	if err != nil {
		return 0, 0, err
	}

	clientAddr := "home"
	clientNet := coreNet
	if hierarchical {
		cache := wallet.New(wallet.Config{Owner: w.Identity("ProxyOp"), Clock: w.Clock, Directory: w.Dir})
		up, err := remote.Dial(context.Background(), coreNet.Dialer(w.Identity("ProxyOp")), "home")
		if err != nil {
			return 0, 0, err
		}
		defer up.Close()
		px, err := proxy.New(proxy.Config{Local: cache, Upstream: up, TTL: time.Minute})
		if err != nil {
			return 0, 0, err
		}
		defer px.Close()
		edgeLn, err := edgeNet.Listen("edge", w.Identity("ProxyOp"))
		if err != nil {
			return 0, 0, err
		}
		edgeSrv := px.Serve(edgeLn)
		defer edgeSrv.Close()
		clientAddr, clientNet = "edge", edgeNet
	}

	notified := make(chan struct{}, clients)
	conns := make([]*remote.Client, clients)
	for i := range conns {
		c, err := remote.Dial(context.Background(), clientNet.Dialer(w.Identity("Client")), clientAddr)
		if err != nil {
			return 0, 0, err
		}
		defer c.Close()
		conns[i] = c
		if _, err := c.QueryDirect(context.Background(), subject, object, nil, 0); err != nil {
			return 0, 0, err
		}
		if _, err := c.Subscribe(context.Background(), cred.ID(), func(ev subs.Event) {
			if ev.Kind == subs.Revoked {
				notified <- struct{}{}
			}
		}); err != nil {
			return 0, 0, err
		}
	}

	if err := home.Revoke(cred.ID(), w.Identity("Org").ID()); err != nil {
		return 0, 0, err
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < clients; i++ {
		select {
		case <-notified:
		case <-deadline:
			return 0, 0, fmt.Errorf("client notifications timed out (%d of %d)", i, clients)
		}
	}
	st := coreNet.Stats()
	return st.Messages, st.Bytes, nil
}
