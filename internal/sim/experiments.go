package sim

import (
	"context"
	"fmt"
	"math"

	"drbac/internal/baseline"
	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/graph"
	"drbac/internal/revocation"
	"drbac/internal/wallet"
)

// DirectionalityPoint is one row of EXP-S1: the search effort of the three
// strategies on one synthetic topology.
type DirectionalityPoint struct {
	Topology  string // "out-tree" or "in-tree"
	Branching int
	Depth     int
	Edges     int
	Forward   graph.Stats
	Reverse   graph.Stats
	Bidi      graph.Stats
}

// RunDirectionality measures EXP-S1 for one (branching, depth) pair on both
// adversarial topologies. In the out-tree the goal hides behind the last
// leaf (forward must sweep ~b^d edges, reverse walks one chain); the
// in-tree mirrors it. Bidirectional search stays near the cheap direction
// on both without knowing the topology — the §4.2.3 reduction.
func RunDirectionality(branching, depth int) ([]DirectionalityPoint, error) {
	var out []DirectionalityPoint
	for _, topo := range []string{"out-tree", "in-tree"} {
		w := NewWorld()
		var (
			t   *Topology
			err error
		)
		if topo == "out-tree" {
			t, err = BuildOutTree(w, branching, depth)
		} else {
			t, err = BuildInTree(w, branching, depth)
		}
		if err != nil {
			return nil, err
		}
		point := DirectionalityPoint{
			Topology: topo, Branching: branching, Depth: depth, Edges: t.Edges,
		}
		for _, dirn := range []graph.Direction{graph.Forward, graph.Reverse, graph.Bidirectional} {
			var stats graph.Stats
			q := t.Query
			q.Direction = dirn
			q.Stats = &stats
			if _, err := t.Wallet.QueryDirect(q); err != nil {
				return nil, fmt.Errorf("directionality %s %v: %w", topo, dirn, err)
			}
			switch dirn {
			case graph.Forward:
				point.Forward = stats
			case graph.Reverse:
				point.Reverse = stats
			case graph.Bidirectional:
				point.Bidi = stats
			}
		}
		w.Close()
		out = append(out, point)
	}
	return out, nil
}

// PruningPoint is one row of EXP-S2: search effort with and without
// valued-attribute monotonicity pruning.
type PruningPoint struct {
	Width, Depth   int
	Edges          int
	PrunedEdges    int // edges explored with pruning on
	UnprunedEdges  int // edges explored with pruning off
	BranchesPruned int
	ProofSatisfies bool
}

// RunPruning measures EXP-S2 on a constraint forest of `width` chains of
// length `depth`, only the last of which satisfies the query constraint.
func RunPruning(width, depth int) (PruningPoint, error) {
	w := NewWorld()
	defer w.Close()
	t, err := BuildConstraintForest(w, width, depth)
	if err != nil {
		return PruningPoint{}, err
	}
	point := PruningPoint{Width: width, Depth: depth, Edges: t.Edges}

	var pruned graph.Stats
	q := t.Query
	q.Stats = &pruned
	p, err := t.Wallet.QueryDirect(q)
	if err != nil {
		return PruningPoint{}, fmt.Errorf("pruning run: %w", err)
	}
	ag, err := p.Aggregate()
	if err != nil {
		return PruningPoint{}, err
	}
	point.ProofSatisfies = core.SatisfiedAll(t.Query.Constraints, ag)
	point.PrunedEdges = pruned.EdgesExplored
	point.BranchesPruned = pruned.Pruned

	// Re-run with pruning disabled through the graph layer directly (the
	// wallet API always prunes; the ablation uses graph options).
	var unpruned graph.Stats
	if _, err := t.Wallet.QueryDirectOptions(t.Query, graph.Options{
		At:             w.Clock.Now(),
		Constraints:    t.Query.Constraints,
		DisablePruning: true,
		Stats:          &unpruned,
	}); err != nil {
		return PruningPoint{}, fmt.Errorf("unpruned run: %w", err)
	}
	point.UnprunedEdges = unpruned.EdgesExplored
	return point, nil
}

// RunRevocation wraps EXP-S3 for the harness.
func RunRevocation(p revocation.Params) ([]revocation.Result, error) {
	return revocation.RunAll(p)
}

// RunSeparability wraps EXP-S4 for the harness.
func RunSeparability(s baseline.Scenario) (drbac, phantom baseline.Outcome, err error) {
	drbac, err = baseline.DRBAC(s)
	if err != nil {
		return baseline.Outcome{}, baseline.Outcome{}, err
	}
	phantom, err = baseline.PhantomRole(s)
	if err != nil {
		return baseline.Outcome{}, baseline.Outcome{}, err
	}
	return drbac, phantom, nil
}

// CaseStudyResult reports the Figure 2 / Table 3 reproduction: the
// discovered proof, its attribute outcomes, and the discovery effort.
type CaseStudyResult struct {
	Proof    *core.Proof
	BW       float64 // expect 100
	Storage  float64 // expect 30
	Hours    float64 // expect 18
	Stats    discovery.Stats
	Messages int64
	Bytes    int64
}

// RunCaseStudy sets up the §5 coalition across three wallets on a fresh
// world and runs the Figure 2 flow end to end.
func RunCaseStudy() (*CaseStudyResult, error) {
	w := NewWorld()
	defer w.Close()
	cs, err := NewCaseStudy(w)
	if err != nil {
		return nil, err
	}
	w.Net.ResetStats()

	var stats discovery.Stats
	proof, err := cs.Agent.Discover(context.Background(), cs.Query, discovery.Auto, &stats)
	if err != nil {
		return nil, fmt.Errorf("case study discovery: %w", err)
	}
	if err := proof.Validate(core.ValidateOptions{At: w.Clock.Now()}); err != nil {
		return nil, err
	}
	ag, err := proof.Aggregate()
	if err != nil {
		return nil, err
	}
	net := w.Net.Stats()
	return &CaseStudyResult{
		Proof:    proof,
		BW:       ag.Value(cs.BW, math.Inf(1)),
		Storage:  ag.Value(cs.Storage, 50),
		Hours:    ag.Value(cs.Hours, 60),
		Stats:    stats,
		Messages: net.Messages,
		Bytes:    net.Bytes,
	}, nil
}

// ChainDiscoveryPoint is one row of the multi-hop discovery scaling sweep:
// a chain of `hops` wallets, each holding one link.
type ChainDiscoveryPoint struct {
	Hops               int
	Rounds             int
	WalletsContacted   int
	RemoteQueries      int
	DelegationsFetched int
	Messages           int64
	Bytes              int64
}

// RunChainDiscovery builds a delegation chain spread across `hops` home
// wallets and measures discovering it from a cold local wallet.
func RunChainDiscovery(hops int) (ChainDiscoveryPoint, error) {
	if hops < 1 {
		return ChainDiscoveryPoint{}, fmt.Errorf("sim: hops must be positive")
	}
	w := NewWorld()
	defer w.Close()

	w.Ensure("User")
	user := w.Identity("User")
	type link struct {
		wallet *wallet.Wallet
		tag    core.DiscoveryTag
	}
	links := make([]link, hops)
	for i := range links {
		owner := fmt.Sprintf("Org%d", i)
		addr := fmt.Sprintf("wallet.org%d", i)
		wal, err := w.Serve(addr, owner)
		if err != nil {
			return ChainDiscoveryPoint{}, err
		}
		links[i] = link{
			wallet: wal,
			tag: core.DiscoveryTag{
				Home:    addr,
				TTL:     0,
				Subject: core.SubjectSearch,
				Object:  core.ObjectNone,
			},
		}
	}

	roleName := func(i int) string { return fmt.Sprintf("Org%d.level", i) }
	// First link: user -> Org0.level, handed to the local wallet directly.
	first, err := w.IssueTagged(fmt.Sprintf("[User -> %s] Org0", roleName(0)), nil, &links[0].tag)
	if err != nil {
		return ChainDiscoveryPoint{}, err
	}
	// Middle links: OrgI.level -> OrgI+1.level, stored at OrgI's wallet.
	for i := 0; i+1 < hops; i++ {
		d, err := w.IssueTagged(
			fmt.Sprintf("[%s -> %s] Org%d", roleName(i), roleName(i+1), i+1),
			&links[i].tag, &links[i+1].tag)
		if err != nil {
			return ChainDiscoveryPoint{}, err
		}
		if err := links[i].wallet.Publish(d); err != nil {
			return ChainDiscoveryPoint{}, err
		}
	}
	// Final link: last level -> goal, stored at the last wallet.
	last := hops - 1
	goalText := fmt.Sprintf("[%s -> Org%d.goal] Org%d", roleName(last), last, last)
	d, err := w.IssueTagged(goalText, &links[last].tag, nil)
	if err != nil {
		return ChainDiscoveryPoint{}, err
	}
	if err := links[last].wallet.Publish(d); err != nil {
		return ChainDiscoveryPoint{}, err
	}

	local := w.Wallet("User")
	if err := local.Publish(first); err != nil {
		return ChainDiscoveryPoint{}, err
	}
	agent := discovery.NewAgent(discovery.Config{
		Local:  local,
		Dialer: w.Net.Dialer(user),
	})
	defer agent.Close()
	agent.Learn(first)

	goal, err := w.Role(fmt.Sprintf("Org%d.goal", last))
	if err != nil {
		return ChainDiscoveryPoint{}, err
	}
	w.Net.ResetStats()
	var stats discovery.Stats
	if _, err := agent.Discover(context.Background(), wallet.Query{
		Subject: core.SubjectEntity(user.ID()),
		Object:  goal,
	}, discovery.Auto, &stats); err != nil {
		return ChainDiscoveryPoint{}, fmt.Errorf("chain discovery (%d hops): %w", hops, err)
	}
	net := w.Net.Stats()
	return ChainDiscoveryPoint{
		Hops:               hops,
		Rounds:             stats.Rounds,
		WalletsContacted:   stats.WalletsContacted,
		RemoteQueries:      stats.RemoteQueries,
		DelegationsFetched: stats.DelegationsFetched,
		Messages:           net.Messages,
		Bytes:              net.Bytes,
	}, nil
}
