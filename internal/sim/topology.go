package sim

import (
	"fmt"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

// Topology is a synthetic delegation structure with a distinguished query,
// built inside a single wallet for the in-graph search experiments
// (§4.2.3).
type Topology struct {
	Wallet *wallet.Wallet
	Query  wallet.Query
	// Edges is the number of delegations issued.
	Edges int
}

// BuildOutTree builds a complete b-ary out-tree of delegations rooted at
// the query subject, depth levels deep, with the query object attached to
// the *last* leaf in depth-first order — the adversarial placement for a
// forward search, which must visit essentially the whole tree, while a
// reverse search walks one chain (§4.2.3's "delegation tree with a
// constant branching factor").
func BuildOutTree(w *World, branching, depth int) (*Topology, error) {
	if branching < 1 || depth < 1 {
		return nil, fmt.Errorf("sim: branching and depth must be positive")
	}
	owner := w.Identity("TreeOwner")
	user := w.Identity("TreeUser")
	wal := w.Wallet("TreeOwner")

	node := func(level, idx int) core.Role {
		return core.NewRole(owner.ID(), fmt.Sprintf("n_%d_%d", level, idx))
	}
	edges := 0
	publish := func(tmpl core.Template) error {
		d, err := core.Issue(owner, tmpl, w.Clock.Now())
		if err != nil {
			return err
		}
		if err := wal.Publish(d); err != nil {
			return err
		}
		edges++
		return nil
	}

	// Root fan-out from the user entity.
	for i := 0; i < branching; i++ {
		if err := publish(core.Template{
			Subject:       core.SubjectEntity(user.ID()),
			SubjectEntity: entityPtr(user.Entity()),
			Object:        node(1, i),
		}); err != nil {
			return nil, err
		}
	}
	// Internal levels.
	width := branching
	for level := 1; level < depth; level++ {
		nextWidth := width * branching
		for parent := 0; parent < width; parent++ {
			for c := 0; c < branching; c++ {
				child := parent*branching + c
				if err := publish(core.Template{
					Subject: core.SubjectRole(node(level, parent)),
					Object:  node(level+1, child),
				}); err != nil {
					return nil, err
				}
			}
		}
		width = nextWidth
	}
	// Goal hangs off the last leaf (highest index = explored last).
	goal := core.NewRole(owner.ID(), "goal")
	if err := publish(core.Template{
		Subject: core.SubjectRole(node(depth, width-1)),
		Object:  goal,
	}); err != nil {
		return nil, err
	}
	return &Topology{
		Wallet: wal,
		Query:  wallet.Query{Subject: core.SubjectEntity(user.ID()), Object: goal},
		Edges:  edges,
	}, nil
}

// BuildInTree mirrors BuildOutTree: a complete b-ary in-tree converging on
// the query object, with the query subject attached to the last leaf — the
// adversarial placement for a reverse search.
func BuildInTree(w *World, branching, depth int) (*Topology, error) {
	if branching < 1 || depth < 1 {
		return nil, fmt.Errorf("sim: branching and depth must be positive")
	}
	owner := w.Identity("TreeOwner")
	user := w.Identity("TreeUser")
	wal := w.Wallet("TreeOwner")

	node := func(level, idx int) core.Role {
		return core.NewRole(owner.ID(), fmt.Sprintf("m_%d_%d", level, idx))
	}
	edges := 0
	publish := func(tmpl core.Template) error {
		d, err := core.Issue(owner, tmpl, w.Clock.Now())
		if err != nil {
			return err
		}
		if err := wal.Publish(d); err != nil {
			return err
		}
		edges++
		return nil
	}

	goal := core.NewRole(owner.ID(), "goal")
	// Level-1 nodes feed the goal.
	for i := 0; i < branching; i++ {
		if err := publish(core.Template{
			Subject: core.SubjectRole(node(1, i)),
			Object:  goal,
		}); err != nil {
			return nil, err
		}
	}
	width := branching
	for level := 1; level < depth; level++ {
		nextWidth := width * branching
		for parent := 0; parent < width; parent++ {
			for c := 0; c < branching; c++ {
				child := parent*branching + c
				if err := publish(core.Template{
					Subject: core.SubjectRole(node(level+1, child)),
					Object:  node(level, parent),
				}); err != nil {
					return nil, err
				}
			}
		}
		width = nextWidth
	}
	// The user hangs off the last deep leaf.
	if err := publish(core.Template{
		Subject:       core.SubjectEntity(user.ID()),
		SubjectEntity: entityPtr(user.Entity()),
		Object:        node(depth, width-1),
	}); err != nil {
		return nil, err
	}
	return &Topology{
		Wallet: wal,
		Query:  wallet.Query{Subject: core.SubjectEntity(user.ID()), Object: goal},
		Edges:  edges,
	}, nil
}

// BuildConstraintForest builds the EXP-S2 topology: from the subject,
// `width` chains of length `depth` lead to the goal. Every chain's first
// edge caps bandwidth at 1 — violating the query's BW >= 500 constraint —
// except the last chain, whose edges carry BW <= 1000. With monotonicity
// pruning the search abandons each bad chain at its first edge; without it,
// every chain is walked to the end before the constraint check fails.
func BuildConstraintForest(w *World, width, depth int) (*Topology, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sim: width and depth must be positive")
	}
	owner := w.Identity("ForestOwner")
	user := w.Identity("ForestUser")
	wal := w.Wallet("ForestOwner")

	bw := core.AttributeRef{Namespace: owner.ID(), Name: "BW"}
	goal := core.NewRole(owner.ID(), "goal")
	node := func(chain, hop int) core.Role {
		return core.NewRole(owner.ID(), fmt.Sprintf("c_%d_%d", chain, hop))
	}
	edges := 0
	publish := func(tmpl core.Template) error {
		d, err := core.Issue(owner, tmpl, w.Clock.Now())
		if err != nil {
			return err
		}
		if err := wal.Publish(d); err != nil {
			return err
		}
		edges++
		return nil
	}

	for chain := 0; chain < width; chain++ {
		bwCap := 1.0
		if chain == width-1 {
			bwCap = 1000.0 // the single satisfying chain, explored last
		}
		if err := publish(core.Template{
			Subject:       core.SubjectEntity(user.ID()),
			SubjectEntity: entityPtr(user.Entity()),
			Object:        node(chain, 1),
			Attributes:    []core.AttributeSetting{{Attr: bw, Op: core.OpMinimum, Value: bwCap}},
		}); err != nil {
			return nil, err
		}
		for hop := 1; hop < depth; hop++ {
			if err := publish(core.Template{
				Subject: core.SubjectRole(node(chain, hop)),
				Object:  node(chain, hop+1),
			}); err != nil {
				return nil, err
			}
		}
		if err := publish(core.Template{
			Subject: core.SubjectRole(node(chain, depth)),
			Object:  goal,
		}); err != nil {
			return nil, err
		}
	}

	return &Topology{
		Wallet: wal,
		Query: wallet.Query{
			Subject: core.SubjectEntity(user.ID()),
			Object:  goal,
			Constraints: []core.Constraint{
				{Attr: bw, Base: 1e9, Minimum: 500},
			},
		},
		Edges: edges,
	}, nil
}

func entityPtr(e core.Entity) *core.Entity { return &e }
