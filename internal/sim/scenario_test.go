package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/discovery"
	"drbac/internal/subs"
	"drbac/internal/wallet"
)

// TestCoalitionLifecycle drives a full simulated day of the §5 coalition on
// the fake clock: discovery and session establishment, TTL renewals keeping
// the cached credentials coherent, a credential expiring mid-session, and
// finally the coalition being revoked — each phase observable through the
// wallet's own events.
func TestCoalitionLifecycle(t *testing.T) {
	w := NewWorld()
	defer w.Close()
	cs, err := NewCaseStudy(w)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: establish the session (Figure 2).
	proof, err := cs.Agent.Discover(context.Background(), cs.Query, discovery.Auto, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan wallet.MonitorEvent, 4)
	mon, err := cs.ServerWallet.MonitorProof(cs.Query, proof,
		func(ev wallet.MonitorEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	bridgeCancel, err := cs.Agent.Bridge(context.Background(), proof)
	if err != nil {
		t.Fatal(err)
	}
	defer bridgeCancel()

	// Phase 2: hours pass; the home wallets periodically re-confirm the
	// cached credentials (TTL 30s in the case study tags). Without
	// renewals the cache would go stale; with them the session survives.
	renewed := make(chan core.DelegationID, 64)
	for _, d := range []*core.Delegation{cs.D2, cs.D5} {
		unsub := cs.ServerWallet.Subscribe(d.ID(), func(ev subs.Event) {
			if ev.Kind == subs.Renewed {
				select {
				case renewed <- ev.Delegation:
				default: // counting a sample suffices; never block the wallet
				}
			}
		})
		defer unsub()
	}
	for tick := 0; tick < 10; tick++ {
		w.Clock.Advance(20 * time.Second)
		// The home wallets push renewals (simulated directly: the remote
		// layer's Renewed events drive RenewCached through the bridge; here
		// the servers confirm by renewing their authoritative copies, which
		// our bridge mirrors for cache entries).
		for _, d := range []*core.Delegation{cs.D2, cs.D5} {
			if !cs.ServerWallet.RenewCached(d.ID(), 30*time.Second) {
				t.Fatalf("tick %d: cache entry for %s missing", tick, d.ID().Short())
			}
		}
		if n := cs.ServerWallet.SweepStaleCache(); n != 0 {
			t.Fatalf("tick %d: %d cached credentials went stale despite renewal", tick, n)
		}
	}
	if !mon.Valid() {
		t.Fatal("session should have survived the renewal phase")
	}
	if len(renewed) == 0 {
		t.Fatal("no renewal events observed")
	}

	// Phase 3: Maria's employer issues her a short-lived top-up credential
	// directly to the server; it expires mid-session without affecting the
	// main proof.
	shortLived, err := w.Issue("[Maria -> AirNet.guest] AirNet <expiry:2026-07-06T12:30:00Z>")
	if err != nil {
		t.Fatal(err)
	}
	// Issued against the world epoch; we are minutes past it, so adjust:
	// publish only if not yet expired, otherwise skip the phase.
	if !shortLived.Expired(w.Clock.Now()) {
		if err := cs.ServerWallet.Publish(shortLived); err != nil {
			t.Fatal(err)
		}
		w.Clock.Advance(time.Hour)
		if n := cs.ServerWallet.SweepExpired(); n != 1 {
			t.Fatalf("expired sweep removed %d, want 1", n)
		}
		if !mon.Valid() {
			t.Fatal("unrelated expiry must not kill the session")
		}
	}

	// Keep the main credentials fresh across the hour that just passed.
	for _, d := range []*core.Delegation{cs.D2, cs.D5} {
		cs.ServerWallet.RenewCached(d.ID(), time.Hour)
	}

	// Phase 4: the partnership ends. Sheila revokes (2) at BigISP's home;
	// the push crosses the bridge and kills the session.
	if err := cs.BigISPWallet.Revoke(cs.D2.ID(), w.Identity("Sheila").ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != wallet.MonitorInvalidated {
			t.Fatalf("final event = %v", ev.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revocation never reached the session monitor")
	}
	if mon.Valid() {
		t.Fatal("session survived coalition revocation")
	}

	// The server wallet refuses the revoked credential permanently.
	if err := cs.ServerWallet.Publish(cs.D2); err == nil {
		t.Fatal("revoked coalition credential re-accepted")
	}
	_, err = cs.ServerWallet.QueryDirect(cs.Query)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("access still provable after revocation: %v", err)
	}
}
