package sim

import (
	"context"
	"testing"
	"time"
)

func TestRunShardScalingStoresEverything(t *testing.T) {
	pt, err := RunShardScaling(2, 40, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 {
		t.Errorf("throughput %v, want > 0", pt.Throughput)
	}
	if pt.Shards != 2 || pt.Publishes != 40 {
		t.Errorf("point %+v, want shards=2 publishes=40", pt)
	}
}

func TestRunCrossShardProofEquivalence(t *testing.T) {
	pt, err := RunCrossShardProof(4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.HomeShards < 2 {
		t.Fatalf("chain collapsed onto %d shard(s); experiment is not cross-shard", pt.HomeShards)
	}
	if !pt.Identical || !pt.Valid {
		t.Errorf("cross-shard proof point %+v, want identical and valid", pt)
	}
}

func TestRunClusterSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := RunClusterSmoke(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Split.Lost != 0 {
		t.Errorf("smoke split lost %d mutations", res.Split.Lost)
	}
	if res.Split.Moved == 0 {
		t.Log("split re-homed nothing (legal but weak; grow the smoke population)")
	}
}
