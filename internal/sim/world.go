// Package sim provides the simulation harness behind the paper-claim
// experiments (EXP-S1, EXP-S2, EXP-F2) and the coalition-sim binary:
// deterministic identities, in-memory networks of served wallets, synthetic
// delegation topologies with constant branching factors (§4.2.3), and the
// Table 3 / Figure 2 case study.
package sim

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// Start is the fixed simulation epoch.
var Start = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// World bundles the substrate one simulation runs on: deterministic
// identities, a shared fake clock, a name directory, and a counted
// in-memory network.
type World struct {
	Clock *clock.Fake
	Net   *transport.MemNetwork
	Dir   *core.MemDirectory

	mu      sync.Mutex
	ids     map[string]*core.Identity
	servers []*remote.Server
}

// NewWorld creates an empty world at the fixed epoch.
func NewWorld() *World {
	return &World{
		Clock: clock.NewFake(Start),
		Net:   transport.NewMemNetwork(),
		Dir:   core.NewDirectory(),
		ids:   make(map[string]*core.Identity),
	}
}

// Close shuts down every served wallet.
func (w *World) Close() {
	w.mu.Lock()
	servers := w.servers
	w.servers = nil
	w.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
}

// Identity returns the deterministic identity for name, creating it on
// first use (seeded by the name's hash, so worlds are reproducible).
func (w *World) Identity(name string) *core.Identity {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id, ok := w.ids[name]; ok {
		return id
	}
	seed := sha256.Sum256([]byte("drbac-sim:" + name))
	id, err := core.IdentityFromSeed(name, seed[:])
	if err != nil {
		// IdentityFromSeed only fails on a wrong seed length, which is
		// impossible here.
		panic(fmt.Sprintf("sim identity %q: %v", name, err))
	}
	w.ids[name] = id
	w.Dir.Add(id.Entity())
	return id
}

// Wallet builds a wallet owned by the named identity on the shared clock.
func (w *World) Wallet(owner string) *wallet.Wallet {
	return wallet.New(wallet.Config{
		Owner:     w.Identity(owner),
		Clock:     w.Clock,
		Directory: w.Dir,
	})
}

// Serve builds a wallet owned by owner and serves it at addr.
func (w *World) Serve(addr, owner string) (*wallet.Wallet, error) {
	wal := w.Wallet(owner)
	ln, err := w.Net.Listen(addr, w.Identity(owner))
	if err != nil {
		return nil, err
	}
	s := remote.Serve(wal, ln)
	w.mu.Lock()
	w.servers = append(w.servers, s)
	w.mu.Unlock()
	return wal, nil
}

// Issue parses the paper syntax and signs with the named issuer, creating
// any entities the text mentions on first use.
func (w *World) Issue(text string) (*core.Delegation, error) {
	return w.IssueTagged(text, nil, nil)
}

// IssueTagged is Issue with subject/object discovery tags attached.
func (w *World) IssueTagged(text string, subjectTag, objectTag *core.DiscoveryTag) (*core.Delegation, error) {
	parsed, err := core.ParseDelegation(text, w.Dir)
	if err != nil {
		return nil, err
	}
	parsed.Template.SubjectTag = subjectTag
	parsed.Template.ObjectTag = objectTag
	issuer := w.identityByID(parsed.Issuer.ID())
	if issuer == nil {
		return nil, fmt.Errorf("sim: no identity for issuer of %q", text)
	}
	return core.Issue(issuer, parsed.Template, w.Clock.Now())
}

// MustIssue is Issue for static texts in experiment setup.
func (w *World) MustIssue(text string) *core.Delegation {
	d, err := w.Issue(text)
	if err != nil {
		panic(fmt.Sprintf("sim issue %q: %v", text, err))
	}
	return d
}

// Role parses a role through the world directory.
func (w *World) Role(text string) (core.Role, error) {
	return core.ParseRole(text, w.Dir)
}

// Subject parses a subject through the world directory.
func (w *World) Subject(text string) (core.Subject, error) {
	return core.ParseSubject(text, w.Dir)
}

func (w *World) identityByID(id core.EntityID) *core.Identity {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, cand := range w.ids {
		if cand.ID() == id {
			return cand
		}
	}
	return nil
}

// Ensure declares entities ahead of parsing texts that reference them.
func (w *World) Ensure(names ...string) {
	for _, n := range names {
		w.Identity(n)
	}
}
