package baseline

import "testing"

func TestScenarioValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Scenario
		wantErr bool
	}{
		{"valid", Scenario{Partners: 2, Privileges: 3, MembersPerPartner: 1}, false},
		{"zero partners", Scenario{Privileges: 3, MembersPerPartner: 1}, true},
		{"zero privileges", Scenario{Partners: 2, MembersPerPartner: 1}, true},
		{"zero members", Scenario{Partners: 2, Privileges: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBothIdiomsAuthorizeAllMembers(t *testing.T) {
	s := Scenario{Partners: 3, Privileges: 4, MembersPerPartner: 2}
	want := s.Partners * s.Privileges * s.MembersPerPartner

	d, err := DRBAC(s)
	if err != nil {
		t.Fatalf("DRBAC: %v", err)
	}
	if d.ProofsVerified != want {
		t.Errorf("dRBAC proofs = %d, want %d", d.ProofsVerified, want)
	}
	ph, err := PhantomRole(s)
	if err != nil {
		t.Fatalf("PhantomRole: %v", err)
	}
	if ph.ProofsVerified != want {
		t.Errorf("phantom proofs = %d, want %d", ph.ProofsVerified, want)
	}
}

// §3.1.3: third-party delegation avoids namespace pollution — the dRBAC
// role count is independent of the number of partners, while the baseline
// mints one phantom role per partner × privilege.
func TestNamespacePollutionScaling(t *testing.T) {
	s := Scenario{Partners: 4, Privileges: 5, MembersPerPartner: 1}

	d, err := DRBAC(s)
	if err != nil {
		t.Fatal(err)
	}
	// dRBAC: K privileges + one admin role per partner, no phantoms.
	if d.PhantomRoles != 0 {
		t.Errorf("dRBAC phantom roles = %d, want 0", d.PhantomRoles)
	}
	if want := s.Privileges + s.Partners; d.RolesCreated != want {
		t.Errorf("dRBAC roles = %d, want %d", d.RolesCreated, want)
	}
	if !d.Separable {
		t.Error("dRBAC idiom should be separable")
	}

	ph, err := PhantomRole(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Partners * s.Privileges; ph.PhantomRoles != want {
		t.Errorf("phantom roles = %d, want %d", ph.PhantomRoles, want)
	}
	if want := s.Privileges + s.Partners*s.Privileges; ph.RolesCreated != want {
		t.Errorf("baseline roles = %d, want %d", ph.RolesCreated, want)
	}
	if ph.Separable {
		t.Error("phantom idiom must not be separable")
	}
	if ph.RolesCreated <= d.RolesCreated {
		t.Errorf("baseline should pollute more: %d vs %d", ph.RolesCreated, d.RolesCreated)
	}
}

// The pollution gap widens linearly with partners for the baseline but
// stays flat for dRBAC (beyond the one admin role per partner).
func TestPollutionGrowthWithPartners(t *testing.T) {
	for _, partners := range []int{1, 3, 6} {
		s := Scenario{Partners: partners, Privileges: 4, MembersPerPartner: 1}
		d, err := DRBAC(s)
		if err != nil {
			t.Fatal(err)
		}
		ph, err := PhantomRole(s)
		if err != nil {
			t.Fatal(err)
		}
		if gap := ph.PhantomRoles - d.PhantomRoles; gap != partners*s.Privileges {
			t.Errorf("partners=%d: phantom gap = %d, want %d", partners, gap, partners*s.Privileges)
		}
	}
}
