// Package baseline implements the expressiveness comparison behind §3.1.3:
// dRBAC's third-party delegation versus the SDSI/SPKI/RT0-style workaround
// in which a partner must mint a "phantom" local role mirroring each
// foreign privilege it wants to hand out.
//
// Both idioms are constructed with real signed delegations and checked by
// proving every member's access through a wallet, so the experiment
// (EXP-S4) counts what each approach actually had to create rather than
// evaluating a formula.
package baseline

import (
	"fmt"
	"time"

	"drbac/internal/core"
	"drbac/internal/wallet"
)

// Scenario shapes one coalition: a resource owner controlling Privileges
// roles, Partners partner organizations, and MembersPerPartner members per
// partner who must each receive every privilege.
type Scenario struct {
	Partners          int
	Privileges        int
	MembersPerPartner int
}

// Validate checks scenario sanity.
func (s Scenario) Validate() error {
	if s.Partners <= 0 || s.Privileges <= 0 || s.MembersPerPartner <= 0 {
		return fmt.Errorf("baseline: all scenario dimensions must be positive")
	}
	return nil
}

// Outcome reports what one idiom had to create.
type Outcome struct {
	// RolesCreated counts distinct role names minted across all
	// namespaces, the paper's "namespace pollution" metric.
	RolesCreated int
	// PhantomRoles counts minted roles that merely mirror a foreign
	// privilege (zero for dRBAC).
	PhantomRoles int
	// Delegations counts signed certificates issued.
	Delegations int
	// ProofsVerified counts member-access proofs that validated (must be
	// Partners × MembersPerPartner × Privileges for both idioms).
	ProofsVerified int
	// Separable reports whether a partner admin can delegate an individual
	// privilege without receiving or re-aggregating the others (§3.1.3's
	// separability property).
	Separable bool
}

// world is the set of identities for a scenario.
type world struct {
	owner    *core.Identity
	partners []*core.Identity // partner admin entities
	members  [][]*core.Identity
	now      time.Time
}

func buildWorld(s Scenario) (*world, error) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	w := &world{now: now}
	var err error
	if w.owner, err = core.NewIdentity("owner"); err != nil {
		return nil, err
	}
	for p := 0; p < s.Partners; p++ {
		admin, err := core.NewIdentity(fmt.Sprintf("partner%d", p))
		if err != nil {
			return nil, err
		}
		w.partners = append(w.partners, admin)
		var ms []*core.Identity
		for m := 0; m < s.MembersPerPartner; m++ {
			member, err := core.NewIdentity(fmt.Sprintf("p%dm%d", p, m))
			if err != nil {
				return nil, err
			}
			ms = append(ms, member)
		}
		w.members = append(w.members, ms)
	}
	return w, nil
}

// DRBAC builds the coalition with third-party delegation (§3.1.2): the
// owner mints one admin role per partner and grants it the
// right-of-assignment for each privilege; partner admins then delegate the
// owner's privileges directly, with support proofs, minting no roles of
// their own.
func DRBAC(s Scenario) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	w, err := buildWorld(s)
	if err != nil {
		return Outcome{}, err
	}
	store := wallet.New(wallet.Config{})
	out := Outcome{Separable: true}
	roles := make(map[core.Role]bool)

	privileges := make([]core.Role, s.Privileges)
	for k := range privileges {
		privileges[k] = core.NewRole(w.owner.ID(), fmt.Sprintf("priv%d", k))
		roles[privileges[k]] = true
	}

	for p, admin := range w.partners {
		adminRole := core.NewRole(w.owner.ID(), fmt.Sprintf("admin%d", p))
		roles[adminRole] = true
		// [admin -> owner.adminP] owner
		d, err := core.Issue(w.owner, core.Template{
			Subject:       core.SubjectEntity(admin.ID()),
			SubjectEntity: entityPtr(admin.Entity()),
			Object:        adminRole,
		}, w.now)
		if err != nil {
			return Outcome{}, err
		}
		if err := store.Publish(d); err != nil {
			return Outcome{}, err
		}
		out.Delegations++

		for _, priv := range privileges {
			// [owner.adminP -> owner.privK'] owner — the grouped
			// assignment rights that make the admin role separable.
			d, err := core.Issue(w.owner, core.Template{
				Subject: core.SubjectRole(adminRole),
				Object:  priv.Assignment(),
			}, w.now)
			if err != nil {
				return Outcome{}, err
			}
			if err := store.Publish(d); err != nil {
				return Outcome{}, err
			}
			out.Delegations++
		}

		for _, member := range w.members[p] {
			for _, priv := range privileges {
				// Third-party: [member -> owner.privK] admin, supported by
				// the wallet-derivable chain admin => owner.privK'.
				d, err := core.Issue(admin, core.Template{
					Subject:       core.SubjectEntity(member.ID()),
					SubjectEntity: entityPtr(member.Entity()),
					Object:        priv,
				}, w.now)
				if err != nil {
					return Outcome{}, err
				}
				if err := store.Publish(d); err != nil {
					return Outcome{}, err
				}
				out.Delegations++
			}
		}
	}

	if err := verifyAccess(store, w, privileges, &out); err != nil {
		return Outcome{}, err
	}
	out.RolesCreated = len(roles)
	out.PhantomRoles = 0
	return out, nil
}

// PhantomRole builds the same coalition the SDSI/SPKI/RT0 way: the owner
// cannot hand out a right-of-assignment on its own roles, so for every
// partner × privilege pair the partner mints a local phantom role
// mirroring the privilege, the owner grants the owner-privilege to that
// phantom role, and the partner (who controls its own namespace) delegates
// the phantom role to members.
func PhantomRole(s Scenario) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	w, err := buildWorld(s)
	if err != nil {
		return Outcome{}, err
	}
	store := wallet.New(wallet.Config{})
	// A catch-all phantom role aggregating several privileges would not be
	// decomposable per privilege — the §3.1.3 separability loss — so a
	// faithful baseline needs one phantom per privilege.
	out := Outcome{Separable: false}
	roles := make(map[core.Role]bool)

	privileges := make([]core.Role, s.Privileges)
	for k := range privileges {
		privileges[k] = core.NewRole(w.owner.ID(), fmt.Sprintf("priv%d", k))
		roles[privileges[k]] = true
	}

	for p, admin := range w.partners {
		for k, priv := range privileges {
			phantom := core.NewRole(admin.ID(), fmt.Sprintf("owner_priv%d", k))
			roles[phantom] = true
			out.PhantomRoles++
			// [partner.owner_privK -> owner.privK] owner (self-certified
			// by the owner: the object is in the owner's namespace).
			d, err := core.Issue(w.owner, core.Template{
				Subject: core.SubjectRole(phantom),
				Object:  priv,
			}, w.now)
			if err != nil {
				return Outcome{}, err
			}
			if err := store.Publish(d); err != nil {
				return Outcome{}, err
			}
			out.Delegations++

			for _, member := range w.members[p] {
				// [member -> partner.owner_privK] partner (self-certified
				// in the partner's own namespace).
				d, err := core.Issue(admin, core.Template{
					Subject:       core.SubjectEntity(member.ID()),
					SubjectEntity: entityPtr(member.Entity()),
					Object:        phantom,
				}, w.now)
				if err != nil {
					return Outcome{}, err
				}
				if err := store.Publish(d); err != nil {
					return Outcome{}, err
				}
				out.Delegations++
			}
		}
	}

	if err := verifyAccess(store, w, privileges, &out); err != nil {
		return Outcome{}, err
	}
	out.RolesCreated = len(roles)
	return out, nil
}

// verifyAccess proves every member holds every privilege.
func verifyAccess(store *wallet.Wallet, w *world, privileges []core.Role, out *Outcome) error {
	for p := range w.partners {
		for _, member := range w.members[p] {
			for _, priv := range privileges {
				proof, err := store.QueryDirect(wallet.Query{
					Subject: core.SubjectEntity(member.ID()),
					Object:  priv,
				})
				if err != nil {
					return fmt.Errorf("member %s lacks %s: %w", member.Name(), priv, err)
				}
				if err := proof.Validate(core.ValidateOptions{At: w.now}); err != nil {
					return err
				}
				out.ProofsVerified++
			}
		}
	}
	return nil
}

func entityPtr(e core.Entity) *core.Entity { return &e }
