package core

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseDelegation hardens the concrete-syntax parser: it must never
// panic, and anything it accepts must re-render to a form it accepts again
// with the same structure.
//
// Run seeds with `go test`; explore with
// `go test -fuzz=FuzzParseDelegation ./internal/core`.
func FuzzParseDelegation(f *testing.F) {
	fixture := newFuzzFixture(f)
	seeds := []string{
		"[Mark -> BigISP.memberServices] BigISP",
		"[BigISP.memberServices -> BigISP.member'] BigISP",
		"[Maria -> BigISP.member] Mark",
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila",
		"[AirNet.mktg -> AirNet.storage -= '] AirNet",
		"[Maria -> BigISP.member] Mark <expiry:2027-01-01T00:00:00Z>",
		"[Maria -> BigISP.member] Mark <depth:2>",
		"[Maria -> BigISP.member] Mark <acting-as:BigISP.member'>",
		"[BigISP.member<wallet.example:BigISP.wallet:30:So> -> AirNet.member] Sheila",
		"[Maria → BigISP.member] Mark",
		"[", "]", "[]", "[->]", "[a->b]c",
		"[Maria -> BigISP.member with ] Mark",
		"[Maria -> BigISP.member'''''''] Mark",
		"[Maria -> BigISP.member] Mark <",
		strings.Repeat("[", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		parsed, err := ParseDelegation(text, fixture.Dir)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must survive issue -> print -> reparse.
		issuer := fixture.identityForFuzz(parsed.Issuer.ID())
		if issuer == nil {
			t.Fatalf("parser resolved an unknown issuer for %q", text)
		}
		d, err := Issue(issuer, parsed.Template, fixture.Now)
		if err != nil {
			// The parser may accept structures Issue rejects (e.g. plain
			// acting-as roles); that is a validation outcome, not a bug.
			return
		}
		rendered := Printer{Dir: fixture.Dir}.Delegation(d)
		reparsed, err := ParseDelegation(rendered, fixture.Dir)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse:\ninput:    %q\nrendered: %q\nerr: %v",
				text, rendered, err)
		}
		if reparsed.Template.Subject != d.Subject ||
			reparsed.Template.Object != d.Object ||
			reparsed.Issuer.ID() != d.Issuer.ID() ||
			len(reparsed.Template.Attributes) != len(d.Attributes) ||
			reparsed.Template.DepthLimit != d.DepthLimit {
			t.Fatalf("round trip changed structure:\ninput:    %q\nrendered: %q", text, rendered)
		}
	})
}

// fuzzFixture mirrors fixture for fuzzing (testing.F instead of testing.T).
type fuzzFixture struct {
	ids []*Identity
	Dir *MemDirectory
	Now time.Time
}

func newFuzzFixture(f *testing.F) *fuzzFixture {
	f.Helper()
	out := &fuzzFixture{
		Dir: NewDirectory(),
		Now: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	}
	for i, name := range []string{"BigISP", "AirNet", "Mark", "Sheila", "Maria"} {
		seed := make([]byte, 32)
		for j := range seed {
			seed[j] = byte(i + 1)
		}
		id, err := IdentityFromSeed(name, seed)
		if err != nil {
			f.Fatal(err)
		}
		out.ids = append(out.ids, id)
		out.Dir.Add(id.Entity())
	}
	return out
}

func (x *fuzzFixture) identityForFuzz(id EntityID) *Identity {
	for _, cand := range x.ids {
		if cand.ID() == id {
			return cand
		}
	}
	return nil
}
