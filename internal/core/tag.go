package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SubjectFlag is the ternary subject-discovery flag of a discovery tag
// (§4.2.1): it specifies where delegations that use the annotated name as a
// subject can be found.
type SubjectFlag int

const (
	// SubjectNone ('-') gives no storage guarantee.
	SubjectNone SubjectFlag = iota + 1
	// SubjectStore ('s') requires such delegations to be stored in the
	// name's home wallet.
	SubjectStore
	// SubjectSearch ('S') additionally requires every object role the
	// subject can be granted to also be of type 'S', making a
	// subject-towards-object search complete.
	SubjectSearch
)

// String renders the flag character.
func (f SubjectFlag) String() string {
	switch f {
	case SubjectStore:
		return "s"
	case SubjectSearch:
		return "S"
	default:
		return "-"
	}
}

// ObjectFlag is the ternary object-discovery flag of a discovery tag.
type ObjectFlag int

const (
	// ObjectNone ('-') gives no storage guarantee.
	ObjectNone ObjectFlag = iota + 1
	// ObjectStore ('o') requires delegations whose object is the annotated
	// role to be stored in the role's home wallet.
	ObjectStore
	// ObjectSearch ('O') additionally requires every subject the role can
	// be granted to to also be of type 'O', making an object-towards-subject
	// search complete.
	ObjectSearch
)

// String renders the flag character.
func (f ObjectFlag) String() string {
	switch f {
	case ObjectStore:
		return "o"
	case ObjectSearch:
		return "O"
	default:
		return "-"
	}
}

// DiscoveryTag annotates a subject, object, or issuer of a delegation with
// the information needed to locate further credentials across a distributed
// system (§4.2.1), e.g.
//
//	bigISP.member<wallet.bigISP.com:bigISP.wallet:30:So>
type DiscoveryTag struct {
	// Home is the network address of the name's authorized home wallet.
	Home string
	// AuthRole is the dRBAC role required to authorize the home wallet and
	// its proxies.
	AuthRole Role
	// TTL is how long a delegation stays valid after a validity
	// confirmation from its home wallet. Zero means the delegation does not
	// require monitoring.
	TTL time.Duration
	// Subject and Object are the two ternary discovery search flags.
	Subject SubjectFlag
	Object  ObjectFlag
}

// Validate checks structural well-formedness. Zero flags are normalized to
// the '-' values by Normalize, so Validate accepts them.
func (t DiscoveryTag) Validate() error {
	if t.Home == "" {
		return fmt.Errorf("discovery tag: empty home wallet address")
	}
	if strings.ContainsAny(t.Home, "<>[]\n\t ") {
		return fmt.Errorf("discovery tag: home address %q contains reserved characters", t.Home)
	}
	if t.TTL < 0 {
		return fmt.Errorf("discovery tag: negative TTL")
	}
	if !t.AuthRole.IsZero() {
		if err := t.AuthRole.Validate(); err != nil {
			return fmt.Errorf("discovery tag auth role: %w", err)
		}
	}
	if t.Subject < 0 || t.Subject > SubjectSearch {
		return fmt.Errorf("discovery tag: invalid subject flag %d", t.Subject)
	}
	if t.Object < 0 || t.Object > ObjectSearch {
		return fmt.Errorf("discovery tag: invalid object flag %d", t.Object)
	}
	return nil
}

// Normalize fills zero flags with the '-' defaults.
func (t DiscoveryTag) Normalize() DiscoveryTag {
	if t.Subject == 0 {
		t.Subject = SubjectNone
	}
	if t.Object == 0 {
		t.Object = ObjectNone
	}
	return t
}

// String renders the tag in the paper's <home:role:ttl:flags> form, with the
// auth role shown through its abbreviated namespace.
func (t DiscoveryTag) String() string {
	t = t.Normalize()
	role := "-"
	if !t.AuthRole.IsZero() {
		role = t.AuthRole.String()
	}
	return fmt.Sprintf("<%s:%s:%d:%s%s>",
		t.Home, role, int(t.TTL/time.Second), t.Subject, t.Object)
}

// parseTagBody parses the inside of <...> given a directory for role names.
// The role field may be "-" for no authorizing role.
func parseTagBody(body string, dir Directory) (DiscoveryTag, error) {
	parts := strings.Split(body, ":")
	if len(parts) != 4 {
		return DiscoveryTag{}, fmt.Errorf("discovery tag %q: want 4 colon-separated fields, got %d", body, len(parts))
	}
	var tag DiscoveryTag
	tag.Home = strings.TrimSpace(parts[0])

	roleField := strings.TrimSpace(parts[1])
	if roleField != "-" && roleField != "" {
		role, err := parseRoleName(roleField, dir)
		if err != nil {
			return DiscoveryTag{}, fmt.Errorf("discovery tag %q: %w", body, err)
		}
		tag.AuthRole = role
	}

	secs, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return DiscoveryTag{}, fmt.Errorf("discovery tag %q: bad TTL: %w", body, err)
	}
	tag.TTL = time.Duration(secs) * time.Second

	flags := strings.TrimSpace(parts[3])
	if len(flags) != 2 {
		return DiscoveryTag{}, fmt.Errorf("discovery tag %q: want 2 flag characters, got %q", body, flags)
	}
	switch flags[0] {
	case '-':
		tag.Subject = SubjectNone
	case 's':
		tag.Subject = SubjectStore
	case 'S':
		tag.Subject = SubjectSearch
	default:
		return DiscoveryTag{}, fmt.Errorf("discovery tag %q: bad subject flag %q", body, flags[0])
	}
	switch flags[1] {
	case '-':
		tag.Object = ObjectNone
	case 'o':
		tag.Object = ObjectStore
	case 'O':
		tag.Object = ObjectSearch
	default:
		return DiscoveryTag{}, fmt.Errorf("discovery tag %q: bad object flag %q", body, flags[1])
	}
	if err := tag.Validate(); err != nil {
		return DiscoveryTag{}, err
	}
	return tag, nil
}
