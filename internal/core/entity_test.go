package core

import (
	"bytes"
	"testing"
)

func TestNewIdentityDistinct(t *testing.T) {
	a, err := NewIdentity("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Fatal("two generated identities share a fingerprint")
	}
}

func TestIdentityFromSeedDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 32)
	a, err := IdentityFromSeed("x", seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := IdentityFromSeed("y", seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("same seed must yield the same fingerprint regardless of name")
	}
}

func TestIdentityFromSeedBadLength(t *testing.T) {
	if _, err := IdentityFromSeed("x", []byte{1, 2, 3}); err == nil {
		t.Fatal("want error for short seed")
	}
}

func TestEntityIDValid(t *testing.T) {
	id, err := NewIdentity("v")
	if err != nil {
		t.Fatal(err)
	}
	if !id.ID().Valid() {
		t.Fatalf("fingerprint %q should be valid", id.ID())
	}
	tests := []struct {
		give EntityID
	}{
		{""},
		{"abc"},
		{EntityID(bytes.Repeat([]byte{'z'}, 64))}, // non-hex
	}
	for _, tt := range tests {
		if tt.give.Valid() {
			t.Errorf("EntityID(%q).Valid() = true, want false", tt.give)
		}
	}
}

func TestEntityIDShort(t *testing.T) {
	if got := EntityID("abcdef0123456789").Short(); got != "abcdef01" {
		t.Fatalf("Short() = %q", got)
	}
	if got := EntityID("ab").Short(); got != "ab" {
		t.Fatalf("Short() on short id = %q", got)
	}
}

func TestSignVerifyBytes(t *testing.T) {
	id, err := NewIdentity("signer")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sig := id.SignBytes(msg)
	if !VerifyBytes(id.Entity(), msg, sig) {
		t.Fatal("signature should verify")
	}
	if VerifyBytes(id.Entity(), append(msg, 'x'), sig) {
		t.Fatal("modified message should not verify")
	}
	other, err := NewIdentity("other")
	if err != nil {
		t.Fatal(err)
	}
	if VerifyBytes(other.Entity(), msg, sig) {
		t.Fatal("wrong key should not verify")
	}
	if VerifyBytes(Entity{Name: "nokey"}, msg, sig) {
		t.Fatal("missing key should not verify")
	}
}

func TestEntityEqual(t *testing.T) {
	a, err := NewIdentity("a")
	if err != nil {
		t.Fatal(err)
	}
	renamed := Entity{Name: "different", Key: a.Entity().Key}
	if !a.Entity().Equal(renamed) {
		t.Fatal("entities with the same key must be equal regardless of name")
	}
}

func TestDirectoryLookup(t *testing.T) {
	a, err := NewIdentity("alpha")
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(a.Entity())
	if got, ok := dir.LookupName("alpha"); !ok || got.ID() != a.ID() {
		t.Fatal("LookupName failed")
	}
	if got, ok := dir.LookupID(a.ID()); !ok || got.Name != "alpha" {
		t.Fatal("LookupID failed")
	}
	if _, ok := dir.LookupName("missing"); ok {
		t.Fatal("LookupName should miss")
	}
	if names := dir.Names(); len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestDisplayID(t *testing.T) {
	a, err := NewIdentity("alpha")
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(a.Entity())
	if got := DisplayID(dir, a.ID()); got != "alpha" {
		t.Fatalf("DisplayID = %q, want alpha", got)
	}
	if got := DisplayID(nil, a.ID()); got != a.ID().Short() {
		t.Fatalf("DisplayID without dir = %q", got)
	}
	b, err := NewIdentity("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := DisplayID(dir, b.ID()); got != b.ID().Short() {
		t.Fatalf("DisplayID for unknown = %q", got)
	}
}
