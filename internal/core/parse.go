package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parsed is the result of parsing the paper's concrete delegation syntax:
// everything except the signature, which only Issue can produce.
type Parsed struct {
	Template Template
	Issuer   Entity
}

// ParseDelegation parses the textual form used throughout the paper,
// resolving entity names through dir:
//
//	[Maria -> BigISP.member] Mark
//	[BigISP.memberServices -> BigISP.member'] BigISP
//	[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila
//	[AirNet.mktg -> AirNet.storage -= '] AirNet
//	[Maria -> AirNet.access] Sheila <expiry:2026-12-31T00:00:00Z>
//
// The unicode arrow "→" is accepted as a synonym for "->". Discovery tags
// may be attached to the subject, object, or issuer name:
//
//	[bigISP.member<wallet.bigISP.com:bigISP.wallet:30:S-> -> airNet.member] sheila
func ParseDelegation(text string, dir Directory) (*Parsed, error) {
	p := &parser{src: text, dir: dir}
	out, err := p.delegation()
	if err != nil {
		return nil, fmt.Errorf("parse delegation %q: %w", text, err)
	}
	return out, nil
}

// ParseRole parses "Entity.name", "Entity.name'", or the attribute
// assignment form "Entity.name <op>= '".
func ParseRole(text string, dir Directory) (Role, error) {
	r, err := parseRoleName(strings.TrimSpace(text), dir)
	if err != nil {
		return Role{}, fmt.Errorf("parse role %q: %w", text, err)
	}
	return r, nil
}

// ParseSubject parses either a bare entity name or a role.
func ParseSubject(text string, dir Directory) (Subject, error) {
	text = strings.TrimSpace(text)
	if !strings.Contains(text, ".") {
		id, err := resolveName(text, dir)
		if err != nil {
			return Subject{}, err
		}
		return SubjectEntity(id), nil
	}
	r, err := ParseRole(text, dir)
	if err != nil {
		return Subject{}, err
	}
	return SubjectRole(r), nil
}

type parser struct {
	src string
	pos int
	dir Directory
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eof() bool {
	p.skipSpace()
	return p.pos >= len(p.src)
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) expect(lit string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], lit) {
		return p.errf("expected %q", lit)
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) tryConsume(lit string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

// name reads an identifier: letters, digits, '_', '-'.
func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '-' && p.pos+1 < len(p.src) && isNameByte(p.src[p.pos+1]) ||
			isNameByte(c) {
			// Treat '-' as part of a name only when followed by another
			// name character, so "-=" and "->" terminate names.
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// delegation parses the full [S -> O with ...] Issuer <annotations> form.
func (p *parser) delegation() (*Parsed, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	subject, subjectTag, subjectEntity, err := p.subjectTerm()
	if err != nil {
		return nil, err
	}
	if !p.tryConsume("->") && !p.tryConsume("→") {
		return nil, p.errf("expected arrow")
	}
	object, objectTag, err := p.objectTerm()
	if err != nil {
		return nil, err
	}
	var settings []AttributeSetting
	if p.tryConsume("with") {
		for {
			s, err := p.setting()
			if err != nil {
				return nil, err
			}
			settings = append(settings, s)
			if !p.tryConsume("and") {
				break
			}
		}
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	issuerName, err := p.name()
	if err != nil {
		return nil, fmt.Errorf("issuer: %w", err)
	}
	issuer, ok := Entity{}, false
	if p.dir != nil {
		issuer, ok = p.dir.LookupName(issuerName)
	}
	if !ok {
		return nil, &UnknownEntityError{Name: issuerName}
	}

	out := &Parsed{
		Template: Template{
			Subject:       subject,
			SubjectEntity: subjectEntity,
			Object:        object,
			Attributes:    settings,
			SubjectTag:    subjectTag,
			ObjectTag:     objectTag,
		},
		Issuer: issuer,
	}

	// Issuer tag and annotations.
	for !p.eof() {
		p.skipSpace()
		if p.peek() != '<' {
			return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
		}
		body, err := p.angleBody()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(body, "expiry:"):
			ts := strings.TrimPrefix(body, "expiry:")
			when, err := time.Parse(time.RFC3339, ts)
			if err != nil {
				return nil, fmt.Errorf("expiry %q: %w", ts, err)
			}
			out.Template.Expiry = when
		case strings.HasPrefix(body, "depth:"):
			n, err := strconv.Atoi(strings.TrimPrefix(body, "depth:"))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad depth limit %q", body)
			}
			out.Template.DepthLimit = n
		case strings.HasPrefix(body, "acting-as:"):
			for _, part := range strings.Split(strings.TrimPrefix(body, "acting-as:"), ",") {
				role, err := parseRoleName(strings.TrimSpace(part), p.dir)
				if err != nil {
					return nil, fmt.Errorf("acting-as: %w", err)
				}
				out.Template.ActingAs = append(out.Template.ActingAs, role)
			}
		default:
			tag, err := parseTagBody(body, p.dir)
			if err != nil {
				return nil, err
			}
			out.Template.IssuerTag = &tag
		}
	}
	return out, nil
}

// subjectTerm parses an entity name or role, with optional discovery tag.
func (p *parser) subjectTerm() (Subject, *DiscoveryTag, *Entity, error) {
	first, err := p.name()
	if err != nil {
		return Subject{}, nil, nil, fmt.Errorf("subject: %w", err)
	}
	if p.peek() != '.' {
		// Bare entity subject.
		tag, err := p.optionalTag()
		if err != nil {
			return Subject{}, nil, nil, err
		}
		if p.dir == nil {
			return Subject{}, nil, nil, fmt.Errorf("no directory to resolve %q", first)
		}
		ent, ok := p.dir.LookupName(first)
		if !ok {
			return Subject{}, nil, nil, &UnknownEntityError{Name: first}
		}
		entCopy := ent
		return SubjectEntity(ent.ID()), tag, &entCopy, nil
	}
	role, err := p.roleAfterNamespace(first, false)
	if err != nil {
		return Subject{}, nil, nil, err
	}
	tag, err := p.optionalTag()
	if err != nil {
		return Subject{}, nil, nil, err
	}
	return SubjectRole(role), tag, nil, nil
}

// objectTerm parses the object role (plain, tick'd, or attribute-assignment
// form), with optional discovery tag.
func (p *parser) objectTerm() (Role, *DiscoveryTag, error) {
	ns, err := p.name()
	if err != nil {
		return Role{}, nil, fmt.Errorf("object: %w", err)
	}
	if p.peek() != '.' {
		return Role{}, nil, p.errf("object must be a role (Entity.name)")
	}
	role, err := p.roleAfterNamespace(ns, true)
	if err != nil {
		return Role{}, nil, err
	}
	tag, err := p.optionalTag()
	if err != nil {
		return Role{}, nil, err
	}
	return role, tag, nil
}

// roleAfterNamespace parses ".name", optional attribute-op suffix (object
// position only), and tick marks, after the namespace name has been read.
func (p *parser) roleAfterNamespace(nsName string, allowAttr bool) (Role, error) {
	if err := p.expect("."); err != nil {
		return Role{}, err
	}
	local, err := p.name()
	if err != nil {
		return Role{}, err
	}
	ns, err := resolveName(nsName, p.dir)
	if err != nil {
		return Role{}, err
	}
	role := Role{Namespace: ns, Name: local}

	if allowAttr {
		if op, ok := p.tryOperator(); ok {
			role.Attr = true
			role.Op = op
		}
	}
	for p.tryConsume("'") {
		role.Tick++
	}
	if role.Attr && role.Tick == 0 {
		return Role{}, p.errf("attribute-assignment role %s.%s needs a tick", nsName, local)
	}
	return role, nil
}

// tryOperator consumes "-=", "*=", or "<=" if present.
func (p *parser) tryOperator() (Operator, bool) {
	switch {
	case p.tryConsume("-="):
		return OpSubtract, true
	case p.tryConsume("*="):
		return OpMultiply, true
	case p.tryConsume("<="):
		return OpMinimum, true
	default:
		return 0, false
	}
}

// setting parses one "Entity.attr <op>= value" clause.
func (p *parser) setting() (AttributeSetting, error) {
	nsName, err := p.name()
	if err != nil {
		return AttributeSetting{}, fmt.Errorf("attribute: %w", err)
	}
	if err := p.expect("."); err != nil {
		return AttributeSetting{}, err
	}
	attrName, err := p.name()
	if err != nil {
		return AttributeSetting{}, err
	}
	op, ok := p.tryOperator()
	if !ok {
		return AttributeSetting{}, p.errf("expected -=, *=, or <= after %s.%s", nsName, attrName)
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == '+' ||
		p.src[p.pos] == '-' || isNameByte(p.src[p.pos])) {
		p.pos++
	}
	lit := p.src[start:p.pos]
	val, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return AttributeSetting{}, p.errf("bad attribute value %q", lit)
	}
	ns, err := resolveName(nsName, p.dir)
	if err != nil {
		return AttributeSetting{}, err
	}
	return AttributeSetting{
		Attr:  AttributeRef{Namespace: ns, Name: attrName},
		Op:    op,
		Value: val,
	}, nil
}

// optionalTag parses a <home:role:ttl:flags> tag if one follows.
func (p *parser) optionalTag() (*DiscoveryTag, error) {
	p.skipSpace()
	if p.peek() != '<' {
		return nil, nil
	}
	// Distinguish "<=" (operator in with-clause context is handled before
	// tags) from a tag opener; a tag body always contains ':'.
	body, err := p.angleBody()
	if err != nil {
		return nil, err
	}
	tag, err := parseTagBody(body, p.dir)
	if err != nil {
		return nil, err
	}
	return &tag, nil
}

// angleBody consumes "<...>" and returns the inside.
func (p *parser) angleBody() (string, error) {
	if err := p.expect("<"); err != nil {
		return "", err
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated <...>")
	}
	body := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return strings.TrimSpace(body), nil
}

// parseRoleName parses a standalone role string such as "bigISP.wallet",
// "BigISP.member'", or "AirNet.storage -= '".
func parseRoleName(text string, dir Directory) (Role, error) {
	p := &parser{src: text, dir: dir}
	ns, err := p.name()
	if err != nil {
		return Role{}, err
	}
	role, err := p.roleAfterNamespace(ns, true)
	if err != nil {
		return Role{}, err
	}
	if !p.eof() {
		return Role{}, p.errf("trailing input in role %q", text)
	}
	return role, nil
}
