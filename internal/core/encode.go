package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"time"
)

// Canonical signing encoding.
//
// Delegations are signed over a deterministic, versioned binary encoding so
// that signature validity never depends on JSON field ordering or float
// formatting. The encoding is length-prefixed throughout and therefore
// unambiguous: no two distinct delegations produce the same bytes.

// signingMagic versions the canonical encoding. Bump on any change.
const signingMagic = "dRBAC/2\n"

type encoder struct {
	buf []byte
}

func (e *encoder) bytes(b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	e.buf = append(e.buf, n[:]...)
	e.buf = append(e.buf, b...)
}

func (e *encoder) str(s string) { e.bytes([]byte(s)) }

func (e *encoder) u64(v uint64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	e.buf = append(e.buf, n[:]...)
}

func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) timestamp(t time.Time) {
	if t.IsZero() {
		e.i64(0)
		return
	}
	e.i64(t.UnixMicro())
}

func (e *encoder) role(r Role) {
	e.str(string(r.Namespace))
	e.str(r.Name)
	e.u64(uint64(r.Tick))
	e.bool(r.Attr)
	e.u64(uint64(r.Op))
}

func (e *encoder) subject(s Subject) {
	e.bool(s.IsEntity())
	if s.IsEntity() {
		e.str(string(s.Entity))
		return
	}
	e.role(s.Role)
}

func (e *encoder) setting(s AttributeSetting) {
	e.str(string(s.Attr.Namespace))
	e.str(s.Attr.Name)
	e.u64(uint64(s.Op))
	e.f64(s.Value)
}

func (e *encoder) tag(t *DiscoveryTag) {
	if t == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	n := t.Normalize()
	e.str(n.Home)
	e.role(n.AuthRole)
	e.i64(int64(n.TTL))
	e.u64(uint64(n.Subject))
	e.u64(uint64(n.Object))
}

// SigningBytes returns the canonical byte encoding the issuer signs. Every
// semantic field of the delegation participates.
func (d *Delegation) SigningBytes() []byte {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, signingMagic...)
	e.subject(d.Subject)
	if d.SubjectEntity != nil {
		e.bool(true)
		e.str(d.SubjectEntity.Name)
		e.bytes(d.SubjectEntity.Key)
	} else {
		e.bool(false)
	}
	e.role(d.Object)
	e.str(d.Issuer.Name)
	e.bytes(d.Issuer.Key)
	e.u64(uint64(len(d.Attributes)))
	for _, s := range d.Attributes {
		e.setting(s)
	}
	e.timestamp(d.IssuedAt)
	e.timestamp(d.Expiry)
	e.u64(d.Nonce)
	e.tag(d.SubjectTag)
	e.tag(d.ObjectTag)
	e.tag(d.IssuerTag)
	e.u64(uint64(len(d.ActingAs)))
	for _, r := range d.ActingAs {
		e.role(r)
	}
	e.u64(uint64(d.DepthLimit))
	return e.buf
}

func hashHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
