package core

import (
	"errors"
	"testing"
	"time"
)

func TestIssueSelfCertified(t *testing.T) {
	f := newFixture(t)
	d := f.issue(t, f.BigISP, Template{
		Subject:       SubjectEntity(f.Mark.ID()),
		SubjectEntity: ptr(f.Mark.Entity()),
		Object:        NewRole(f.BigISP.ID(), "memberServices"),
	})
	if d.Kind() != KindSelfCertified {
		t.Fatalf("Kind = %v, want self-certified", d.Kind())
	}
	if d.IsAssignment() {
		t.Fatal("plain role delegation reported as assignment")
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(d.RequiredSupport(true)) != 0 {
		t.Fatal("self-certified delegation should need no support")
	}
}

func TestIssueThirdPartyRequiresAssignmentSupport(t *testing.T) {
	f := newFixture(t)
	member := NewRole(f.BigISP.ID(), "member")
	d := f.issue(t, f.Mark, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        member,
	})
	if d.Kind() != KindThirdParty {
		t.Fatalf("Kind = %v, want third-party", d.Kind())
	}
	need := d.RequiredSupport(false)
	if len(need) != 1 || need[0] != member.Assignment() {
		t.Fatalf("RequiredSupport = %v, want [%v]", need, member.Assignment())
	}
}

func TestIssueAssignmentDelegation(t *testing.T) {
	f := newFixture(t)
	d := f.issue(t, f.BigISP, Template{
		Subject: SubjectRole(NewRole(f.BigISP.ID(), "memberServices")),
		Object:  NewRole(f.BigISP.ID(), "member").Assignment(),
	})
	if !d.IsAssignment() {
		t.Fatal("tick'd object not reported as assignment")
	}
	if d.Kind() != KindSelfCertified {
		t.Fatal("BigISP delegating BigISP.member' should be self-certified")
	}
}

func TestRequiredSupportForeignAttributes(t *testing.T) {
	f := newFixture(t)
	bw := AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}
	d := f.issue(t, f.Sheila, Template{
		Subject:    SubjectRole(NewRole(f.BigISP.ID(), "member")),
		Object:     NewRole(f.AirNet.ID(), "member"),
		Attributes: []AttributeSetting{{Attr: bw, Op: OpMinimum, Value: 100}},
	})
	strict := d.RequiredSupport(true)
	if len(strict) != 2 {
		t.Fatalf("strict RequiredSupport = %v, want role assignment + attr right", strict)
	}
	if strict[1] != bw.AssignmentRole(OpMinimum) {
		t.Fatalf("attr right = %v", strict[1])
	}
	lax := d.RequiredSupport(false)
	if len(lax) != 1 {
		t.Fatalf("lax RequiredSupport = %v, want role assignment only", lax)
	}
}

func TestRequiredSupportOwnAttributesNeedNothing(t *testing.T) {
	f := newFixture(t)
	bw := AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}
	d := f.issue(t, f.AirNet, Template{
		Subject:    SubjectRole(NewRole(f.AirNet.ID(), "member")),
		Object:     NewRole(f.AirNet.ID(), "access"),
		Attributes: []AttributeSetting{{Attr: bw, Op: OpMinimum, Value: 200}},
	})
	if got := d.RequiredSupport(true); len(got) != 0 {
		t.Fatalf("issuer setting its own attribute should need no support, got %v", got)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	f := newFixture(t)
	d1, _, _ := f.table1(t)
	d1.Object.Name = "admin"
	if err := d1.Verify(); err == nil {
		t.Fatal("tampered delegation should fail verification")
	}
	var sigErr *SignatureError
	if err := d1.Verify(); !errors.As(err, &sigErr) {
		t.Fatalf("want SignatureError, got %v", err)
	}
}

func TestVerifyDetectsForgedIssuer(t *testing.T) {
	f := newFixture(t)
	d1, _, _ := f.table1(t)
	d1.Issuer = f.Mark.Entity() // claim Mark issued it
	if err := d1.Verify(); err == nil {
		t.Fatal("forged issuer should fail verification")
	}
}

func TestExpiry(t *testing.T) {
	f := newFixture(t)
	d := f.issue(t, f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
		Expiry:        f.Now.Add(time.Hour),
	})
	if d.Expired(f.Now) {
		t.Fatal("not yet expired")
	}
	if !d.Expired(f.Now.Add(2 * time.Hour)) {
		t.Fatal("should be expired after expiry")
	}
	unexpiring := f.issue(t, f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "other"),
	})
	if unexpiring.Expired(f.Now.Add(1000 * time.Hour)) {
		t.Fatal("zero expiry never expires")
	}
}

func TestIssueRejectsExpiryBeforeIssuance(t *testing.T) {
	f := newFixture(t)
	_, err := Issue(f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
		Expiry:        f.Now.Add(-time.Hour),
	}, f.Now)
	if err == nil {
		t.Fatal("want error for expiry before issuance")
	}
}

func TestIssueRejectsSelfLoop(t *testing.T) {
	f := newFixture(t)
	member := NewRole(f.BigISP.ID(), "member")
	_, err := Issue(f.BigISP, Template{
		Subject: SubjectRole(member),
		Object:  member,
	}, f.Now)
	if err == nil {
		t.Fatal("want error for subject == object")
	}
}

func TestIssueRejectsMismatchedSubjectEntity(t *testing.T) {
	f := newFixture(t)
	_, err := Issue(f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Mark.Entity()), // wrong key material
		Object:        NewRole(f.BigISP.ID(), "member"),
	}, f.Now)
	if err == nil {
		t.Fatal("want error for mismatched subject entity")
	}
}

func TestIssueRejectsNonAssignmentActingAs(t *testing.T) {
	f := newFixture(t)
	_, err := Issue(f.Mark, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
		ActingAs:      []Role{NewRole(f.BigISP.ID(), "member")}, // no tick
	}, f.Now)
	if err == nil {
		t.Fatal("want error for acting-as without tick")
	}
}

func TestDelegationIDStableAndUnique(t *testing.T) {
	f := newFixture(t)
	tmpl := Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
	}
	a, err := Issue(f.BigISP, tmpl, f.Now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Issue(f.BigISP, tmpl, f.Now)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Fatal("nonce should uniquify otherwise identical delegations")
	}
	if a.ID() != a.ID() {
		t.Fatal("ID must be stable")
	}
}

func TestSigningBytesDiffer(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	seen := map[string]bool{}
	for _, d := range []*Delegation{d1, d2, d3} {
		k := string(d.SigningBytes())
		if seen[k] {
			t.Fatal("distinct delegations share signing bytes")
		}
		seen[k] = true
	}
}

func TestKindString(t *testing.T) {
	if KindSelfCertified.String() != "self-certified" || KindThirdParty.String() != "third-party" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func ptr[T any](v T) *T { return &v }
