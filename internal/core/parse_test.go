package core

import (
	"strings"
	"testing"
	"time"
)

func TestParseTable1Examples(t *testing.T) {
	f := newFixture(t)
	tests := []struct {
		name string
		give string
		want func(t *testing.T, p *Parsed)
	}{
		{
			name: "self-certified (1)",
			give: "[Mark -> BigISP.memberServices] BigISP",
			want: func(t *testing.T, p *Parsed) {
				if !p.Template.Subject.IsEntity() || p.Template.Subject.Entity != f.Mark.ID() {
					t.Errorf("subject = %v", p.Template.Subject)
				}
				if p.Template.Object != NewRole(f.BigISP.ID(), "memberServices") {
					t.Errorf("object = %v", p.Template.Object)
				}
				if p.Issuer.ID() != f.BigISP.ID() {
					t.Errorf("issuer = %v", p.Issuer)
				}
			},
		},
		{
			name: "assignment (2)",
			give: "[BigISP.memberServices -> BigISP.member'] BigISP",
			want: func(t *testing.T, p *Parsed) {
				if p.Template.Subject.Role != NewRole(f.BigISP.ID(), "memberServices") {
					t.Errorf("subject = %v", p.Template.Subject)
				}
				if p.Template.Object != NewRole(f.BigISP.ID(), "member").Assignment() {
					t.Errorf("object = %v, want tick'd member", p.Template.Object)
				}
			},
		},
		{
			name: "third-party (3)",
			give: "[Maria -> BigISP.member] Mark",
			want: func(t *testing.T, p *Parsed) {
				if p.Issuer.ID() != f.Mark.ID() {
					t.Errorf("issuer = %v", p.Issuer)
				}
				if p.Template.Object.Namespace != f.BigISP.ID() {
					t.Errorf("object namespace = %v", p.Template.Object.Namespace)
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := ParseDelegation(tt.give, f.Dir)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			tt.want(t, p)
		})
	}
}

func TestParseTable2ValuedAttributes(t *testing.T) {
	f := newFixture(t)
	// Delegation (4) from Table 2.
	p, err := ParseDelegation(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila",
		f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Template.Attributes) != 2 {
		t.Fatalf("attributes = %v", p.Template.Attributes)
	}
	bw := p.Template.Attributes[0]
	if bw.Attr.Name != "BW" || bw.Op != OpMinimum || bw.Value != 100 {
		t.Errorf("BW setting = %+v", bw)
	}
	st := p.Template.Attributes[1]
	if st.Attr.Name != "storage" || st.Op != OpSubtract || st.Value != 20 {
		t.Errorf("storage setting = %+v", st)
	}
}

func TestParseTable2AttributeAssignment(t *testing.T) {
	f := newFixture(t)
	// Delegation (5) from Table 2: [AirNet.mktg -> AirNet.storage -= '] AirNet.
	p, err := ParseDelegation("[AirNet.mktg -> AirNet.storage -= '] AirNet", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	obj := p.Template.Object
	if !obj.Attr || obj.Op != OpSubtract || obj.Tick != 1 || obj.Name != "storage" {
		t.Fatalf("object = %+v, want attribute-assignment role", obj)
	}
	want := AttributeRef{Namespace: f.AirNet.ID(), Name: "storage"}.AssignmentRole(OpSubtract)
	if obj != want {
		t.Fatalf("object = %v, want %v", obj, want)
	}
}

func TestParseUnicodeArrow(t *testing.T) {
	f := newFixture(t)
	p, err := ParseDelegation("[Maria → BigISP.member] Mark", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Template.Object.Name != "member" {
		t.Fatalf("object = %v", p.Template.Object)
	}
}

func TestParseExpiry(t *testing.T) {
	f := newFixture(t)
	p, err := ParseDelegation("[Maria -> BigISP.member] Mark <expiry:2026-12-31T00:00:00Z>", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2026, 12, 31, 0, 0, 0, 0, time.UTC)
	if !p.Template.Expiry.Equal(want) {
		t.Fatalf("expiry = %v, want %v", p.Template.Expiry, want)
	}
}

func TestParseDiscoveryTags(t *testing.T) {
	f := newFixture(t)
	give := "[BigISP.member<wallet.bigISP.example:BigISP.wallet:30:S-> -> AirNet.member<wallet.airNet.example:-:0:-o>] Sheila"
	p, err := ParseDelegation(give, f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Template.SubjectTag
	if st == nil {
		t.Fatal("missing subject tag")
	}
	if st.Home != "wallet.bigISP.example" {
		t.Errorf("home = %q", st.Home)
	}
	if st.AuthRole != NewRole(f.BigISP.ID(), "wallet") {
		t.Errorf("auth role = %v", st.AuthRole)
	}
	if st.TTL != 30*time.Second {
		t.Errorf("ttl = %v", st.TTL)
	}
	if st.Subject != SubjectSearch || st.Object != ObjectNone {
		t.Errorf("flags = %v%v", st.Subject, st.Object)
	}
	ot := p.Template.ObjectTag
	if ot == nil || ot.Object != ObjectStore || ot.Subject != SubjectNone || !ot.AuthRole.IsZero() {
		t.Errorf("object tag = %+v", ot)
	}
}

func TestParseErrors(t *testing.T) {
	f := newFixture(t)
	tests := []struct {
		name string
		give string
	}{
		{"missing bracket", "Maria -> BigISP.member] Mark"},
		{"missing arrow", "[Maria BigISP.member] Mark"},
		{"unknown subject entity", "[Nobody -> BigISP.member] Mark"},
		{"unknown issuer", "[Maria -> BigISP.member] Nobody"},
		{"unknown namespace", "[Maria -> Nowhere.member] Mark"},
		{"entity object", "[Maria -> BigISP] Mark"},
		{"bad attribute operator", "[Maria -> BigISP.member with AirNet.BW += 3] Mark"},
		{"bad attribute value", "[Maria -> BigISP.member with AirNet.BW <= lots] Mark"},
		{"trailing junk", "[Maria -> BigISP.member] Mark garbage"},
		{"unterminated tag", "[Maria -> BigISP.member] Mark <expiry:2026"},
		{"bad expiry", "[Maria -> BigISP.member] Mark <expiry:notatime>"},
		{"attr role without tick", "[Maria -> AirNet.storage -= 20x] Mark"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseDelegation(tt.give, f.Dir); err == nil {
				t.Fatalf("parse(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestParseRoleForms(t *testing.T) {
	f := newFixture(t)
	tests := []struct {
		give string
		want Role
	}{
		{"BigISP.member", NewRole(f.BigISP.ID(), "member")},
		{"BigISP.member'", NewRole(f.BigISP.ID(), "member").Assignment()},
		{"BigISP.member''", NewRole(f.BigISP.ID(), "member").Assignment().Assignment()},
		{"AirNet.storage -= '", AttributeRef{Namespace: f.AirNet.ID(), Name: "storage"}.AssignmentRole(OpSubtract)},
		{"AirNet.BW <= '", AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}.AssignmentRole(OpMinimum)},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseRole(tt.give, f.Dir)
			if err != nil {
				t.Fatalf("ParseRole: %v", err)
			}
			if got != tt.want {
				t.Fatalf("got %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestParseSubjectForms(t *testing.T) {
	f := newFixture(t)
	got, err := ParseSubject("Maria", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEntity() || got.Entity != f.Maria.ID() {
		t.Fatalf("subject = %v", got)
	}
	got, err = ParseSubject("BigISP.member", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsEntity() || got.Role.Name != "member" {
		t.Fatalf("subject = %v", got)
	}
	if _, err := ParseSubject("Missing", f.Dir); err == nil {
		t.Fatal("want error for unknown entity")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := newFixture(t)
	pr := Printer{Dir: f.Dir}
	texts := []string{
		"[Mark -> BigISP.memberServices] BigISP",
		"[BigISP.memberServices -> BigISP.member'] BigISP",
		"[Maria -> BigISP.member] Mark",
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila",
		"[AirNet.mktg -> AirNet.storage -= '] AirNet",
		"[Maria -> BigISP.member] Mark <expiry:2027-01-01T00:00:00Z>",
	}
	for _, text := range texts {
		t.Run(text, func(t *testing.T) {
			d := f.parseIssue(t, text)
			rendered := pr.Delegation(d)
			reparsed, err := ParseDelegation(rendered, f.Dir)
			if err != nil {
				t.Fatalf("reparse %q: %v", rendered, err)
			}
			if reparsed.Template.Subject != d.Subject {
				t.Errorf("subject round trip: %v != %v", reparsed.Template.Subject, d.Subject)
			}
			if reparsed.Template.Object != d.Object {
				t.Errorf("object round trip: %v != %v", reparsed.Template.Object, d.Object)
			}
			if reparsed.Issuer.ID() != d.Issuer.ID() {
				t.Errorf("issuer round trip")
			}
			if len(reparsed.Template.Attributes) != len(d.Attributes) {
				t.Errorf("attribute count round trip")
			}
			if !reparsed.Template.Expiry.Equal(d.Expiry) {
				t.Errorf("expiry round trip: %v != %v", reparsed.Template.Expiry, d.Expiry)
			}
		})
	}
}

func TestPrinterFallsBackToFingerprints(t *testing.T) {
	f := newFixture(t)
	d1, _, _ := f.table1(t)
	out := Printer{}.Delegation(d1)
	if strings.Contains(out, "BigISP") {
		t.Fatalf("printer without directory leaked a name: %q", out)
	}
	if !strings.Contains(out, f.BigISP.ID().Short()) {
		t.Fatalf("printer should show fingerprints: %q", out)
	}
}

func TestDiscoveryTagString(t *testing.T) {
	f := newFixture(t)
	tag := DiscoveryTag{
		Home:     "wallet.bigISP.example",
		AuthRole: NewRole(f.BigISP.ID(), "wallet"),
		TTL:      30 * time.Second,
		Subject:  SubjectSearch,
		Object:   ObjectStore,
	}
	got := Printer{Dir: f.Dir}.Tag(&tag)
	want := "<wallet.bigISP.example:BigISP.wallet:30:So>"
	if got != want {
		t.Fatalf("Tag = %q, want %q", got, want)
	}
}

func TestParseActingAs(t *testing.T) {
	f := newFixture(t)
	d := f.parseIssue(t, "[Maria -> BigISP.member] Mark <acting-as:BigISP.member'>")
	if len(d.ActingAs) != 1 || d.ActingAs[0] != NewRole(f.BigISP.ID(), "member").Assignment() {
		t.Fatalf("ActingAs = %v", d.ActingAs)
	}
	// Round trip through the printer.
	rendered := Printer{Dir: f.Dir}.Delegation(d)
	reparsed, err := ParseDelegation(rendered, f.Dir)
	if err != nil {
		t.Fatalf("reparse %q: %v", rendered, err)
	}
	if len(reparsed.Template.ActingAs) != 1 || reparsed.Template.ActingAs[0] != d.ActingAs[0] {
		t.Fatalf("acting-as round trip: %v", reparsed.Template.ActingAs)
	}
}

func TestParseActingAsMultiple(t *testing.T) {
	f := newFixture(t)
	d := f.parseIssue(t, "[Maria -> BigISP.member] Mark <acting-as:BigISP.member',BigISP.guest'>")
	if len(d.ActingAs) != 2 {
		t.Fatalf("ActingAs = %v", d.ActingAs)
	}
}

func TestParseActingAsRejectsPlainRole(t *testing.T) {
	f := newFixture(t)
	// Acting-as roles must be assignment roles (carry a tick); Issue
	// enforces this during validation.
	parsed, err := ParseDelegation("[Maria -> BigISP.member] Mark <acting-as:BigISP.member>", f.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Issue(f.Mark, parsed.Template, f.Now); err == nil {
		t.Fatal("plain acting-as role accepted")
	}
}
