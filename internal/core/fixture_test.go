package core

import (
	"testing"
	"time"
)

// fixture builds the paper's running-example principals (§1.1): BigISP,
// AirNet, Mark (BigISP member services), Sheila (AirNet marketing), and the
// mobile user Maria.
type fixture struct {
	BigISP, AirNet, Mark, Sheila, Maria *Identity
	Dir                                 *MemDirectory
	Now                                 time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{Now: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
	mk := func(name string, seedByte byte) *Identity {
		t.Helper()
		seed := make([]byte, 32)
		for i := range seed {
			seed[i] = seedByte
		}
		id, err := IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		return id
	}
	f.BigISP = mk("BigISP", 1)
	f.AirNet = mk("AirNet", 2)
	f.Mark = mk("Mark", 3)
	f.Sheila = mk("Sheila", 4)
	f.Maria = mk("Maria", 5)
	f.Dir = NewDirectory(
		f.BigISP.Entity(), f.AirNet.Entity(), f.Mark.Entity(),
		f.Sheila.Entity(), f.Maria.Entity(),
	)
	return f
}

// issue signs a template and fails the test on error.
func (f *fixture) issue(t *testing.T, issuer *Identity, tmpl Template) *Delegation {
	t.Helper()
	d, err := Issue(issuer, tmpl, f.Now)
	if err != nil {
		t.Fatalf("issue by %s: %v", issuer.Name(), err)
	}
	return d
}

// parseIssue parses the paper syntax and signs with the named issuer.
func (f *fixture) parseIssue(t *testing.T, text string) *Delegation {
	t.Helper()
	parsed, err := ParseDelegation(text, f.Dir)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	issuer := f.identityFor(t, parsed.Issuer.ID())
	d, err := Issue(issuer, parsed.Template, f.Now)
	if err != nil {
		t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (f *fixture) identityFor(t *testing.T, id EntityID) *Identity {
	t.Helper()
	for _, cand := range []*Identity{f.BigISP, f.AirNet, f.Mark, f.Sheila, f.Maria} {
		if cand.ID() == id {
			return cand
		}
	}
	t.Fatalf("no identity for %s", id.Short())
	return nil
}

// table1 issues the three Table 1 delegations:
//
//	(1) [Mark -> BigISP.memberServices] BigISP
//	(2) [BigISP.memberServices -> BigISP.member'] BigISP
//	(3) [Maria -> BigISP.member] Mark
func (f *fixture) table1(t *testing.T) (d1, d2, d3 *Delegation) {
	t.Helper()
	d1 = f.parseIssue(t, "[Mark -> BigISP.memberServices] BigISP")
	d2 = f.parseIssue(t, "[BigISP.memberServices -> BigISP.member'] BigISP")
	d3 = f.parseIssue(t, "[Maria -> BigISP.member] Mark")
	return d1, d2, d3
}

// markSupport assembles the support proof Mark => BigISP.member' from
// delegations (1) and (2).
func (f *fixture) markSupport(t *testing.T, d1, d2 *Delegation) *Proof {
	t.Helper()
	sup, err := NewProof(ProofStep{Delegation: d1}, ProofStep{Delegation: d2})
	if err != nil {
		t.Fatalf("support proof: %v", err)
	}
	return sup
}
