package core

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestProofTable1MariaIsMember(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	sup := f.markSupport(t, d1, d2)

	// Delegations (1)+(2) prove Mark => BigISP.member', the support proof
	// for third-party delegation (3); together they prove
	// Maria => BigISP.member (§3.1.2).
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{sup}})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !proof.Subject.IsEntity() || proof.Subject.Entity != f.Maria.ID() {
		t.Fatalf("subject = %v", proof.Subject)
	}
	if proof.Object != NewRole(f.BigISP.ID(), "member") {
		t.Fatalf("object = %v", proof.Object)
	}
}

func TestProofSupportProofValidatesAlone(t *testing.T) {
	f := newFixture(t)
	d1, d2, _ := f.table1(t)
	sup := f.markSupport(t, d1, d2)
	if err := sup.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("support proof invalid: %v", err)
	}
	if sup.Object != NewRole(f.BigISP.ID(), "member").Assignment() {
		t.Fatalf("support object = %v", sup.Object)
	}
}

func TestProofThirdPartyWithoutSupportFails(t *testing.T) {
	f := newFixture(t)
	_, _, d3 := f.table1(t)
	proof, err := NewProof(ProofStep{Delegation: d3})
	if err != nil {
		t.Fatal(err)
	}
	err = proof.Validate(ValidateOptions{At: f.Now})
	var missing *MissingSupportError
	if !errors.As(err, &missing) {
		t.Fatalf("want MissingSupportError, got %v", err)
	}
	if missing.Need != NewRole(f.BigISP.ID(), "member").Assignment() {
		t.Fatalf("missing role = %v", missing.Need)
	}
}

func TestProofWrongSupportFails(t *testing.T) {
	f := newFixture(t)
	d1, _, d3 := f.table1(t)
	// d1 alone proves Mark => BigISP.memberServices, not member'.
	wrong, err := NewProof(ProofStep{Delegation: d1})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{wrong}})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(ValidateOptions{At: f.Now}); err == nil {
		t.Fatal("support proof for the wrong role should not authorize")
	}
}

func TestProofBrokenChainFails(t *testing.T) {
	f := newFixture(t)
	d1, d2, _ := f.table1(t)
	// d1 grants memberServices to entity Mark; chaining d1 then d2 is fine
	// (d2's subject is the role memberServices). Break it by swapping.
	p := &Proof{
		Subject: d2.Subject,
		Object:  d1.Object,
		Steps:   []ProofStep{{Delegation: d2}, {Delegation: d1}},
	}
	err := p.Validate(ValidateOptions{At: f.Now})
	var chain *ChainError
	if !errors.As(err, &chain) {
		t.Fatalf("want ChainError, got %v", err)
	}
}

func TestProofEntityInInteriorFails(t *testing.T) {
	f := newFixture(t)
	// [X -> role] then [entity -> ...] cannot chain: interior subjects must
	// be roles (§3.1.1).
	dA := f.parseIssue(t, "[BigISP.member -> AirNet.member] AirNet")
	dB := f.parseIssue(t, "[Maria -> BigISP.other] BigISP")
	p := &Proof{
		Subject: dA.Subject,
		Object:  dB.Object,
		Steps:   []ProofStep{{Delegation: dA}, {Delegation: dB}},
	}
	var chain *ChainError
	if err := p.Validate(ValidateOptions{At: f.Now}); !errors.As(err, &chain) {
		t.Fatalf("want ChainError for entity interior subject, got %v", err)
	}
}

func TestProofEmptyFails(t *testing.T) {
	p := &Proof{}
	if err := p.Validate(ValidateOptions{}); err == nil {
		t.Fatal("empty proof must not validate")
	}
	if _, err := NewProof(); err == nil {
		t.Fatal("NewProof() with no steps must fail")
	}
}

func TestProofExpiredDelegationFails(t *testing.T) {
	f := newFixture(t)
	d := f.issue(t, f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
		Expiry:        f.Now.Add(time.Minute),
	})
	proof, err := NewProof(ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("fresh delegation: %v", err)
	}
	err = proof.Validate(ValidateOptions{At: f.Now.Add(time.Hour)})
	var expired *ExpiredError
	if !errors.As(err, &expired) {
		t.Fatalf("want ExpiredError, got %v", err)
	}
}

func TestProofRevokedDelegationFails(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	sup := f.markSupport(t, d1, d2)
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{sup}})
	if err != nil {
		t.Fatal(err)
	}
	revokedID := d2.ID() // revoke deep inside the support proof
	err = proof.Validate(ValidateOptions{
		At:      f.Now,
		Revoked: func(id DelegationID) bool { return id == revokedID },
	})
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("want ErrRevoked (support delegation revoked), got %v", err)
	}
}

func TestProofDepthLimit(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	sup := f.markSupport(t, d1, d2)
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{sup}})
	if err != nil {
		t.Fatal(err)
	}
	err = proof.Validate(ValidateOptions{At: f.Now, MaxDepth: 1})
	if !errors.Is(err, ErrProofDepth) {
		t.Fatalf("want ErrProofDepth at MaxDepth=1, got %v", err)
	}
	if err := proof.Validate(ValidateOptions{At: f.Now, MaxDepth: 2}); err != nil {
		t.Fatalf("MaxDepth=2 should suffice: %v", err)
	}
}

func TestProofStrictAttributesRequireRights(t *testing.T) {
	f := newFixture(t)
	bw := AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}

	// Sheila holds AirNet.member' via mktg, but no BW right yet.
	dMktg := f.parseIssue(t, "[Sheila -> AirNet.mktg] AirNet")
	dAssign := f.parseIssue(t, "[AirNet.mktg -> AirNet.member'] AirNet")
	roleSup, err := NewProof(ProofStep{Delegation: dMktg}, ProofStep{Delegation: dAssign})
	if err != nil {
		t.Fatal(err)
	}

	d := f.issue(t, f.Sheila, Template{
		Subject:    SubjectRole(NewRole(f.BigISP.ID(), "member")),
		Object:     NewRole(f.AirNet.ID(), "member"),
		Attributes: []AttributeSetting{{Attr: bw, Op: OpMinimum, Value: 100}},
	})
	proof := &Proof{
		Subject: d.Subject,
		Object:  d.Object,
		Steps:   []ProofStep{{Delegation: d, Support: []*Proof{roleSup}}},
	}

	// Lax mode: role support suffices.
	if err := proof.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("lax validation: %v", err)
	}
	// Strict mode: the BW right is missing.
	err = proof.Validate(ValidateOptions{At: f.Now, StrictAttributes: true})
	var missing *MissingSupportError
	if !errors.As(err, &missing) {
		t.Fatalf("want MissingSupportError for BW right, got %v", err)
	}

	// Add the attribute right (Table 2 delegation (5) pattern) and retry.
	dAttr := f.parseIssue(t, "[AirNet.mktg -> AirNet.BW <= '] AirNet")
	attrSup, err := NewProof(ProofStep{Delegation: dMktg}, ProofStep{Delegation: dAttr})
	if err != nil {
		t.Fatal(err)
	}
	proof.Steps[0].Support = append(proof.Steps[0].Support, attrSup)
	if err := proof.Validate(ValidateOptions{At: f.Now, StrictAttributes: true}); err != nil {
		t.Fatalf("strict validation with attr right: %v", err)
	}
}

func TestProofConstraints(t *testing.T) {
	f := newFixture(t)
	bw := AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}
	d := f.issue(t, f.AirNet, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.AirNet.ID(), "access"),
		Attributes:    []AttributeSetting{{Attr: bw, Op: OpMinimum, Value: 100}},
	})
	proof, err := NewProof(ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	ok := ValidateOptions{At: f.Now, Constraints: []Constraint{
		{Attr: bw, Base: math.Inf(1), Minimum: 100},
	}}
	if err := proof.Validate(ok); err != nil {
		t.Fatalf("satisfiable constraint rejected: %v", err)
	}
	tight := ValidateOptions{At: f.Now, Constraints: []Constraint{
		{Attr: bw, Base: math.Inf(1), Minimum: 101},
	}}
	err = proof.Validate(tight)
	var ce *ConstraintError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConstraintError, got %v", err)
	}
	if ce.Value != 100 {
		t.Fatalf("constraint error value = %v", ce.Value)
	}
}

func TestProofConcat(t *testing.T) {
	f := newFixture(t)
	dA := f.parseIssue(t, "[Maria -> BigISP.member] BigISP")
	dB := f.parseIssue(t, "[BigISP.member -> AirNet.member] AirNet")
	pA, err := NewProof(ProofStep{Delegation: dA})
	if err != nil {
		t.Fatal(err)
	}
	pB, err := NewProof(ProofStep{Delegation: dB})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := pA.Concat(pB)
	if err != nil {
		t.Fatal(err)
	}
	if err := joined.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("joined proof: %v", err)
	}
	if joined.Len() != 2 {
		t.Fatalf("Len = %d", joined.Len())
	}
	if _, err := pB.Concat(pA); err == nil {
		t.Fatal("mismatched concat should fail")
	}
}

func TestProofDelegationsDeduplicates(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	sup := f.markSupport(t, d1, d2)
	// Attach the same support twice; Delegations must deduplicate.
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{sup, sup}})
	if err != nil {
		t.Fatal(err)
	}
	all := proof.Delegations()
	if len(all) != 3 {
		t.Fatalf("Delegations() = %d entries, want 3", len(all))
	}
}

func TestProofAggregateAcrossChain(t *testing.T) {
	f := newFixture(t)
	bw := AttributeRef{Namespace: f.AirNet.ID(), Name: "BW"}
	dA := f.parseIssue(t, "[Maria -> AirNet.member with AirNet.BW <= 100] AirNet")
	dB := f.parseIssue(t, "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet")
	pA, _ := NewProof(ProofStep{Delegation: dA})
	pB, _ := NewProof(ProofStep{Delegation: dB})
	joined, err := pA.Concat(pB)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := joined.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(bw, math.Inf(1)); got != 100 {
		t.Fatalf("BW along chain = %v, want min(100,200)=100", got)
	}
}

func TestProofStringRenders(t *testing.T) {
	f := newFixture(t)
	d1, d2, d3 := f.table1(t)
	sup := f.markSupport(t, d1, d2)
	proof, err := NewProof(ProofStep{Delegation: d3, Support: []*Proof{sup}})
	if err != nil {
		t.Fatal(err)
	}
	if proof.String() == "" {
		t.Fatal("String() empty")
	}
	out := Printer{Dir: f.Dir}.Proof(proof)
	if out == "" {
		t.Fatal("Printer.Proof empty")
	}
}
