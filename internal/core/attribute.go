package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Operator is one of the three monotone valued-attribute operators (§3.2.1).
// Every attribute is bound to exactly one operator; the restriction of each
// operator's operand range guarantees that values only decrease along a
// delegation chain, which in turn guarantees search termination and enables
// pruning (§4.2.3).
type Operator int

const (
	// OpSubtract ("-=") subtracts a positive quantity; the accumulated
	// default is zero.
	OpSubtract Operator = iota + 1
	// OpMultiply ("*=") multiplies by a quantity in (0, 1]; the accumulated
	// default is one.
	OpMultiply
	// OpMinimum ("<=") collects the minimum of the values along the chain;
	// the accumulated default is +Inf.
	OpMinimum
)

// Valid reports whether op is a known operator.
func (op Operator) Valid() bool {
	return op == OpSubtract || op == OpMultiply || op == OpMinimum
}

// String renders the operator's symbol without the trailing '='.
func (op Operator) String() string {
	switch op {
	case OpSubtract:
		return "-"
	case OpMultiply:
		return "*"
	case OpMinimum:
		return "<"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// CheckOperand validates v against the operator's legal range.
func (op Operator) CheckOperand(v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("attribute operand is NaN")
	}
	switch op {
	case OpSubtract:
		if v < 0 {
			return fmt.Errorf("-= operand must be non-negative, got %v", v)
		}
	case OpMultiply:
		if v <= 0 || v > 1 {
			return fmt.Errorf("*= operand must be in (0, 1], got %v", v)
		}
	case OpMinimum:
		if v < 0 {
			return fmt.Errorf("<= operand must be non-negative, got %v", v)
		}
	default:
		return fmt.Errorf("unknown operator %d", int(op))
	}
	return nil
}

// AttributeRef names a valued attribute inside an entity's namespace. The
// attribute namespace is disjoint from the role namespace (§3.2.1).
type AttributeRef struct {
	Namespace EntityID
	Name      string
}

// Validate checks structural well-formedness.
func (a AttributeRef) Validate() error {
	if !a.Namespace.Valid() {
		return fmt.Errorf("attribute %q: invalid namespace %q", a.Name, a.Namespace)
	}
	if a.Name == "" {
		return fmt.Errorf("attribute in namespace %s: empty name", a.Namespace.Short())
	}
	if strings.ContainsAny(a.Name, " .[]<>'\n\t") {
		return fmt.Errorf("attribute name %q contains reserved characters", a.Name)
	}
	return nil
}

// String renders the reference with an abbreviated namespace.
func (a AttributeRef) String() string {
	return a.Namespace.Short() + "." + a.Name
}

// AssignmentRole returns the role that represents the right to set this
// attribute with the given operator (Table 2: "while the Valued Attribute is
// not a Role, the right to set it is").
func (a AttributeRef) AssignmentRole(op Operator) Role {
	return Role{Namespace: a.Namespace, Name: a.Name, Tick: 1, Attr: true, Op: op}
}

// AttributeSetting is one clause of a delegation's "with" list: it applies
// Op with operand Value to attribute Attr.
type AttributeSetting struct {
	Attr  AttributeRef
	Op    Operator
	Value float64
}

// Validate checks structural well-formedness and operand range.
func (s AttributeSetting) Validate() error {
	if err := s.Attr.Validate(); err != nil {
		return err
	}
	if !s.Op.Valid() {
		return fmt.Errorf("attribute %s: invalid operator", s.Attr)
	}
	if err := s.Op.CheckOperand(s.Value); err != nil {
		return fmt.Errorf("attribute %s: %w", s.Attr, err)
	}
	return nil
}

// String renders the setting, e.g. "a1b2c3d4.BW <= 100".
func (s AttributeSetting) String() string {
	return fmt.Sprintf("%s %s= %s", s.Attr, s.Op, formatFloat(s.Value))
}

// Modifier is the accumulated effect of one attribute's settings along a
// delegation chain. The zero Modifier is not valid; use NewModifier.
type Modifier struct {
	Op Operator
	// Sub is the total subtracted (OpSubtract).
	Sub float64
	// Mul is the accumulated product (OpMultiply).
	Mul float64
	// Min is the collected minimum (OpMinimum).
	Min float64
}

// NewModifier returns the identity modifier for op (the §3.2.1 defaults:
// zero, one, +Inf).
func NewModifier(op Operator) Modifier {
	return Modifier{Op: op, Sub: 0, Mul: 1, Min: math.Inf(1)}
}

// Combine folds one more setting into the modifier. The setting's operator
// must match m.Op.
func (m Modifier) Combine(v float64) Modifier {
	switch m.Op {
	case OpSubtract:
		m.Sub += v
	case OpMultiply:
		m.Mul *= v
	case OpMinimum:
		m.Min = math.Min(m.Min, v)
	}
	return m
}

// Merge combines two accumulated modifiers for the same attribute (used when
// concatenating chain segments). Both must share the operator.
func (m Modifier) Merge(other Modifier) Modifier {
	switch m.Op {
	case OpSubtract:
		m.Sub += other.Sub
	case OpMultiply:
		m.Mul *= other.Mul
	case OpMinimum:
		m.Min = math.Min(m.Min, other.Min)
	}
	return m
}

// Apply evaluates the modified value given the resource's base allocation.
// For OpMinimum the base participates in the minimum (an unset base should
// be passed as +Inf).
func (m Modifier) Apply(base float64) float64 {
	switch m.Op {
	case OpSubtract:
		return base - m.Sub
	case OpMultiply:
		return base * m.Mul
	case OpMinimum:
		return math.Min(base, m.Min)
	default:
		return base
	}
}

// IsIdentity reports whether the modifier leaves every base unchanged.
func (m Modifier) IsIdentity() bool {
	switch m.Op {
	case OpSubtract:
		return m.Sub == 0
	case OpMultiply:
		return m.Mul == 1
	case OpMinimum:
		return math.IsInf(m.Min, 1)
	default:
		return true
	}
}

// Aggregate maps each attribute touched along a chain to its accumulated
// modifier. The zero value is ready to use via Add (nil maps are handled by
// NewAggregate / clone-on-write helpers below).
type Aggregate map[AttributeRef]Modifier

// NewAggregate returns an empty aggregate.
func NewAggregate() Aggregate { return make(Aggregate) }

// Add folds an attribute setting into the aggregate, returning an error if
// the attribute was previously bound to a different operator (§3.2.1:
// "associating each valued attribute with a single operator").
func (ag Aggregate) Add(s AttributeSetting) error {
	m, ok := ag[s.Attr]
	if !ok {
		m = NewModifier(s.Op)
	} else if m.Op != s.Op {
		return &OperatorConflictError{Attr: s.Attr, Bound: m.Op, Got: s.Op}
	}
	ag[s.Attr] = m.Combine(s.Value)
	return nil
}

// AddAll folds every setting of a delegation into the aggregate.
func (ag Aggregate) AddAll(settings []AttributeSetting) error {
	for _, s := range settings {
		if err := ag.Add(s); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds another aggregate into this one.
func (ag Aggregate) Merge(other Aggregate) error {
	for attr, om := range other {
		m, ok := ag[attr]
		if !ok {
			ag[attr] = om
			continue
		}
		if m.Op != om.Op {
			return &OperatorConflictError{Attr: attr, Bound: m.Op, Got: om.Op}
		}
		ag[attr] = m.Merge(om)
	}
	return nil
}

// Clone returns an independent copy.
func (ag Aggregate) Clone() Aggregate {
	out := make(Aggregate, len(ag))
	for k, v := range ag {
		out[k] = v
	}
	return out
}

// Value evaluates one attribute against a base allocation; attributes the
// chain never touched evaluate to the base itself.
func (ag Aggregate) Value(attr AttributeRef, base float64) float64 {
	m, ok := ag[attr]
	if !ok {
		return base
	}
	return m.Apply(base)
}

// Attrs returns the touched attributes in deterministic order.
func (ag Aggregate) Attrs() []AttributeRef {
	out := make([]AttributeRef, 0, len(ag))
	for attr := range ag {
		out = append(out, attr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// OperatorConflictError reports an attribute re-bound to a different
// operator along a chain.
type OperatorConflictError struct {
	Attr  AttributeRef
	Bound Operator
	Got   Operator
}

func (e *OperatorConflictError) Error() string {
	return fmt.Sprintf("attribute %s bound to operator %s= but set with %s=", e.Attr, e.Bound, e.Got)
}

// Constraint is one valued-attribute requirement attached to a query (§4.1):
// the evaluated value of Attr, starting from Base, must be at least Minimum.
// Monotonicity of the operators means a chain that violates a constraint can
// be pruned: no extension can raise the value again (§4.2.3).
type Constraint struct {
	Attr AttributeRef
	// Base is the resource's baseline allocation for the attribute. Use
	// +Inf for purely min-collected attributes.
	Base float64
	// Minimum is the least acceptable evaluated value.
	Minimum float64
}

// Satisfied reports whether the aggregate meets the constraint.
func (c Constraint) Satisfied(ag Aggregate) bool {
	return ag.Value(c.Attr, c.Base) >= c.Minimum
}

// constraintJSON is the wire form of Constraint: base and minimum travel as
// strings because encoding/json rejects non-finite floats, and +Inf is the
// designed default base for min-collected attributes.
type constraintJSON struct {
	Attr    AttributeRef `json:"attr"`
	Base    string       `json:"base"`
	Minimum string       `json:"minimum"`
}

// MarshalJSON implements json.Marshaler.
func (c Constraint) MarshalJSON() ([]byte, error) {
	return json.Marshal(constraintJSON{
		Attr:    c.Attr,
		Base:    encodeFloat(c.Base),
		Minimum: encodeFloat(c.Minimum),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Constraint) UnmarshalJSON(data []byte) error {
	var raw constraintJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	base, err := decodeFloat(raw.Base)
	if err != nil {
		return fmt.Errorf("constraint base: %w", err)
	}
	minimum, err := decodeFloat(raw.Minimum)
	if err != nil {
		return fmt.Errorf("constraint minimum: %w", err)
	}
	c.Attr = raw.Attr
	c.Base = base
	c.Minimum = minimum
	return nil
}

func encodeFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func decodeFloat(s string) (float64, error) {
	switch s {
	case "+inf", "inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	case "":
		return 0, nil
	default:
		return strconv.ParseFloat(s, 64)
	}
}

// AdjustConstraints rewrites query constraints for the *remainder* of a
// chain whose prefix has already accumulated the given modifiers — the
// §4.2.3 "modulated attribute ranges" optimization for distributed path
// augmentation: the remote wallet can prune continuations that cannot
// satisfy the query once the prefix's consumption is accounted for.
//
// The rewrite folds the prefix into each constraint's base: a subtracted
// amount shrinks the base, a multiplier scales it, and a collected minimum
// caps it. Because operators are monotone, the adjusted constraint is
// exactly the requirement on the remaining chain.
func AdjustConstraints(constraints []Constraint, prefix Aggregate) []Constraint {
	if len(constraints) == 0 || len(prefix) == 0 {
		return constraints
	}
	out := make([]Constraint, len(constraints))
	copy(out, constraints)
	for i, c := range out {
		m, ok := prefix[c.Attr]
		if !ok {
			continue
		}
		out[i].Base = m.Apply(c.Base)
	}
	return out
}

// SatisfiedAll reports whether the aggregate meets every constraint.
func SatisfiedAll(constraints []Constraint, ag Aggregate) bool {
	for _, c := range constraints {
		if !c.Satisfied(ag) {
			return false
		}
	}
	return true
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
