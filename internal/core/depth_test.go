package core

import (
	"errors"
	"testing"
)

// The §6 transitive-trust extension: a delegation may bound how many
// further delegations can follow it in a chain.

func TestDepthLimitParsePrintRoundTrip(t *testing.T) {
	f := newFixture(t)
	d := f.parseIssue(t, "[Maria -> BigISP.member] BigISP <depth:2>")
	if d.DepthLimit != 2 {
		t.Fatalf("DepthLimit = %d", d.DepthLimit)
	}
	rendered := Printer{Dir: f.Dir}.Delegation(d)
	reparsed, err := ParseDelegation(rendered, f.Dir)
	if err != nil {
		t.Fatalf("reparse %q: %v", rendered, err)
	}
	if reparsed.Template.DepthLimit != 2 {
		t.Fatalf("round trip DepthLimit = %d", reparsed.Template.DepthLimit)
	}
}

func TestDepthLimitParseErrors(t *testing.T) {
	f := newFixture(t)
	for _, text := range []string{
		"[Maria -> BigISP.member] BigISP <depth:x>",
		"[Maria -> BigISP.member] BigISP <depth:-1>",
	} {
		if _, err := ParseDelegation(text, f.Dir); err == nil {
			t.Errorf("parse(%q) succeeded", text)
		}
	}
}

func TestDepthLimitParticipatesInSignature(t *testing.T) {
	f := newFixture(t)
	d := f.parseIssue(t, "[Maria -> BigISP.member] BigISP <depth:2>")
	d.DepthLimit = 10 // tamper: widen the limit
	if err := d.Verify(); err == nil {
		t.Fatal("widened depth limit must break the signature")
	}
}

func TestDepthLimitValidation(t *testing.T) {
	f := newFixture(t)
	// Chain: Maria -> A.x (depth:1) -> A.y -> A.z. The first delegation
	// allows one further step, but two follow.
	d1 := f.parseIssue(t, "[Maria -> BigISP.x] BigISP <depth:1>")
	d2 := f.parseIssue(t, "[BigISP.x -> BigISP.y] BigISP")
	d3 := f.parseIssue(t, "[BigISP.y -> BigISP.z] BigISP")

	two, err := NewProof(ProofStep{Delegation: d1}, ProofStep{Delegation: d2})
	if err != nil {
		t.Fatal(err)
	}
	if err := two.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("one further step is within the limit: %v", err)
	}

	three, err := NewProof(
		ProofStep{Delegation: d1}, ProofStep{Delegation: d2}, ProofStep{Delegation: d3})
	if err != nil {
		t.Fatal(err)
	}
	var chainErr *ChainError
	if err := three.Validate(ValidateOptions{At: f.Now}); !errors.As(err, &chainErr) {
		t.Fatalf("two further steps must violate depth:1, got %v", err)
	}
}

func TestDepthLimitZeroMeansLeafOnly(t *testing.T) {
	f := newFixture(t)
	// depth:0 is "unlimited" in our encoding (zero value); the way to
	// forbid all further delegation is to grant to an entity, which
	// terminates chains (§3.1.1). Verify the two interact sanely: an
	// entity grant with a depth limit still validates alone.
	d := f.parseIssue(t, "[Maria -> BigISP.member] BigISP <depth:1>")
	p, err := NewProof(ProofStep{Delegation: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatal(err)
	}
}

func TestIssueRejectsNegativeDepthLimit(t *testing.T) {
	f := newFixture(t)
	_, err := Issue(f.BigISP, Template{
		Subject:       SubjectEntity(f.Maria.ID()),
		SubjectEntity: ptr(f.Maria.Entity()),
		Object:        NewRole(f.BigISP.ID(), "member"),
		DepthLimit:    -1,
	}, f.Now)
	if err == nil {
		t.Fatal("negative depth limit accepted")
	}
}
