package core

import (
	"strings"
	"testing"
	"time"
)

func validNS() EntityID { return EntityID(strings.Repeat("cd", 32)) }

func TestRoleValidateTable(t *testing.T) {
	ns := validNS()
	tests := []struct {
		name    string
		give    Role
		wantErr bool
	}{
		{"plain ok", Role{Namespace: ns, Name: "member"}, false},
		{"tick ok", Role{Namespace: ns, Name: "member", Tick: 2}, false},
		{"attr ok", Role{Namespace: ns, Name: "bw", Tick: 1, Attr: true, Op: OpMinimum}, false},
		{"bad namespace", Role{Namespace: "xyz", Name: "member"}, true},
		{"empty name", Role{Namespace: ns}, true},
		{"reserved chars", Role{Namespace: ns, Name: "mem ber"}, true},
		{"dot in name", Role{Namespace: ns, Name: "a.b"}, true},
		{"negative tick", Role{Namespace: ns, Name: "member", Tick: -1}, true},
		{"attr without tick", Role{Namespace: ns, Name: "bw", Attr: true, Op: OpMinimum}, true},
		{"attr without op", Role{Namespace: ns, Name: "bw", Tick: 1, Attr: true}, true},
		{"op on plain role", Role{Namespace: ns, Name: "member", Op: OpMinimum}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestRoleAssignmentAndBase(t *testing.T) {
	r := NewRole(validNS(), "member")
	up := r.Assignment()
	if up.Tick != 1 || !up.IsAssignment() {
		t.Fatalf("Assignment = %+v", up)
	}
	if up.Assignment().Tick != 2 {
		t.Fatal("double tick failed")
	}
	if up.Base() != r {
		t.Fatal("Base should undo Assignment")
	}
	if r.Base() != r {
		t.Fatal("Base on plain role should be identity")
	}
	if r.IsZero() || !(Role{}).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestSubjectValidateTable(t *testing.T) {
	ns := validNS()
	tests := []struct {
		name    string
		give    Subject
		wantErr bool
	}{
		{"entity ok", SubjectEntity(ns), false},
		{"role ok", SubjectRole(Role{Namespace: ns, Name: "x"}), false},
		{"zero", Subject{}, true},
		{"both set", Subject{Entity: ns, Role: Role{Namespace: ns, Name: "x"}}, true},
		{"bad entity", SubjectEntity("nope"), true},
		{"bad role", SubjectRole(Role{Namespace: ns}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestDiscoveryTagValidateTable(t *testing.T) {
	ns := validNS()
	ok := DiscoveryTag{Home: "wallet.example", TTL: 30 * time.Second}
	tests := []struct {
		name    string
		mutate  func(*DiscoveryTag)
		wantErr bool
	}{
		{"valid", func(*DiscoveryTag) {}, false},
		{"with auth role", func(tg *DiscoveryTag) { tg.AuthRole = Role{Namespace: ns, Name: "wallet"} }, false},
		{"empty home", func(tg *DiscoveryTag) { tg.Home = "" }, true},
		{"reserved home", func(tg *DiscoveryTag) { tg.Home = "a <b>" }, true},
		{"negative ttl", func(tg *DiscoveryTag) { tg.TTL = -time.Second }, true},
		{"bad auth role", func(tg *DiscoveryTag) { tg.AuthRole = Role{Namespace: ns} }, true},
		{"bad subject flag", func(tg *DiscoveryTag) { tg.Subject = 99 }, true},
		{"bad object flag", func(tg *DiscoveryTag) { tg.Object = 99 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tag := ok
			tt.mutate(&tag)
			err := tag.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tag, err, tt.wantErr)
			}
		})
	}
}

func TestDiscoveryTagNormalizeAndFlags(t *testing.T) {
	tag := DiscoveryTag{Home: "h"}.Normalize()
	if tag.Subject != SubjectNone || tag.Object != ObjectNone {
		t.Fatalf("Normalize = %+v", tag)
	}
	if SubjectNone.String() != "-" || SubjectStore.String() != "s" || SubjectSearch.String() != "S" {
		t.Fatal("subject flag strings wrong")
	}
	if ObjectNone.String() != "-" || ObjectStore.String() != "o" || ObjectSearch.String() != "O" {
		t.Fatal("object flag strings wrong")
	}
}

func TestRoleStringForms(t *testing.T) {
	ns := validNS()
	tests := []struct {
		give Role
		want string
	}{
		{Role{Namespace: ns, Name: "member"}, ns.Short() + ".member"},
		{Role{Namespace: ns, Name: "member", Tick: 2}, ns.Short() + ".member''"},
		{Role{Namespace: ns, Name: "bw", Tick: 1, Attr: true, Op: OpSubtract}, ns.Short() + ".bw -='"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
