package core

import (
	"errors"
	"testing"

	"drbac/internal/sigcache"
)

// table3Proof assembles the full §5 / Table 3 proof Maria => AirNet.access:
// three primary steps, the middle one carrying Sheila's two-step
// right-of-assignment support proof — five signatures in total.
func table3Proof(t *testing.T, f *fixture) *Proof {
	t.Helper()
	d1 := f.parseIssue(t, "[Maria -> BigISP.member] BigISP")
	d3 := f.parseIssue(t, "[Sheila -> AirNet.mktg] AirNet")
	d4 := f.parseIssue(t, "[AirNet.mktg -> AirNet.member'] AirNet")
	sup, err := NewProof(ProofStep{Delegation: d3}, ProofStep{Delegation: d4})
	if err != nil {
		t.Fatal(err)
	}
	d2 := f.parseIssue(t,
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20] Sheila")
	d5 := f.parseIssue(t, "[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet")
	p, err := NewProof(
		ProofStep{Delegation: d1},
		ProofStep{Delegation: d2, Support: []*Proof{sup}},
		ProofStep{Delegation: d5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateWithSigVerifier(t *testing.T) {
	f := newFixture(t)
	p := table3Proof(t, f)
	if err := p.Validate(ValidateOptions{At: f.Now}); err != nil {
		t.Fatalf("baseline validation: %v", err)
	}

	c := sigcache.New(0)
	opts := ValidateOptions{At: f.Now, SigVerifier: c}
	if err := p.Validate(opts); err != nil {
		t.Fatalf("cold validation with verifier: %v", err)
	}
	st := c.Stats()
	if st.Size != 5 {
		t.Errorf("memo holds %d signatures after cold validation, want 5", st.Size)
	}
	if err := p.Validate(opts); err != nil {
		t.Fatalf("warm validation with verifier: %v", err)
	}
	warm := c.Stats()
	if warm.Misses != st.Misses {
		t.Errorf("warm validation ran %d real verifications", warm.Misses-st.Misses)
	}
	if warm.Hits <= st.Hits {
		t.Error("warm validation produced no cache hits")
	}
}

// TestValidateWithVerifierRejectsTamper warms the memo with the valid proof,
// then tampers one support-proof signature: validation must fail with a
// *SignatureError naming the tampered delegation, never serving it warm.
func TestValidateWithVerifierRejectsTamper(t *testing.T) {
	f := newFixture(t)
	p := table3Proof(t, f)
	c := sigcache.New(0)
	opts := ValidateOptions{At: f.Now, SigVerifier: c}
	if err := p.Validate(opts); err != nil {
		t.Fatalf("warming validation: %v", err)
	}

	tampered := p.Steps[1].Support[0].Steps[0].Delegation
	tampered.Signature = append([]byte(nil), tampered.Signature...)
	tampered.Signature[3] ^= 1
	err := p.Validate(opts)
	if err == nil {
		t.Fatal("tampered support signature validated")
	}
	var sigErr *SignatureError
	if !errors.As(err, &sigErr) {
		t.Fatalf("error = %v, want *SignatureError", err)
	}
	if sigErr.ID != tampered.ID() {
		t.Errorf("error names %s, want the tampered delegation %s",
			sigErr.ID.Short(), tampered.ID().Short())
	}
}

func TestVerifyDistinguishesStructureFromSignature(t *testing.T) {
	f := newFixture(t)
	d := f.parseIssue(t, "[Maria -> BigISP.member] BigISP")

	bad := *d
	bad.Signature = append([]byte(nil), d.Signature...)
	bad.Signature[0] ^= 1
	var sigErr *SignatureError
	var structErr *StructureError
	if err := bad.Verify(); !errors.As(err, &sigErr) {
		t.Errorf("tampered signature: err = %v, want *SignatureError", err)
	}
	if err := bad.Verify(); errors.As(err, &structErr) {
		t.Errorf("tampered signature misreported as *StructureError")
	}

	malformed := *d
	malformed.DepthLimit = -1
	if err := malformed.Verify(); !errors.As(err, &structErr) {
		t.Errorf("malformed delegation: err = %v, want *StructureError", err)
	}
	if err := malformed.VerifyWith(sigcache.New(0)); !errors.As(err, &structErr) {
		t.Errorf("malformed via verifier: err = %v, want *StructureError", err)
	}
}

func TestPrimeDelegations(t *testing.T) {
	f := newFixture(t)
	p := table3Proof(t, f)
	ds := p.Delegations()
	if len(ds) != 5 {
		t.Fatalf("proof tree yields %d delegations, want 5", len(ds))
	}
	c := sigcache.New(0)
	PrimeDelegations(c, ds)
	for _, d := range ds {
		if !c.HasVerified(d.Issuer.Key, d.SigningBytes(), d.Signature) {
			t.Errorf("delegation %s not primed", d.ID().Short())
		}
	}
	// Nil verifier and nil delegations are no-ops.
	PrimeDelegations(nil, ds)
	PrimeDelegations(c, []*Delegation{nil})
	// Re-priming warm delegations runs no verifications.
	before := c.Stats().Misses
	PrimeDelegations(c, ds)
	if c.Stats().Misses != before {
		t.Error("re-priming re-verified memoized signatures")
	}
}
