package core

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors matched by callers with errors.Is.
var (
	// ErrNoProof reports that no authorizing proof exists for a query.
	ErrNoProof = errors.New("drbac: no authorizing proof")
	// ErrRevoked reports that a delegation in a proof has been revoked.
	ErrRevoked = errors.New("drbac: delegation revoked")
	// ErrProofDepth reports that support-proof recursion exceeded the
	// configured limit.
	ErrProofDepth = errors.New("drbac: support proof recursion too deep")
)

// StructureError reports a delegation rejected by Verify for
// well-formedness, as opposed to a failed signature check. Callers that
// triage invalid credentials (e.g. the wallet's store replay) distinguish
// the two with errors.As.
type StructureError struct {
	ID  DelegationID
	Err error
}

func (e *StructureError) Error() string {
	return fmt.Sprintf("delegation %s: malformed: %v", e.ID.Short(), e.Err)
}

// Unwrap exposes the underlying well-formedness failure.
func (e *StructureError) Unwrap() error { return e.Err }

// SignatureError reports a delegation whose signature does not verify.
type SignatureError struct {
	ID     DelegationID
	Issuer Entity
}

func (e *SignatureError) Error() string {
	return fmt.Sprintf("delegation %s: signature by %s does not verify", e.ID.Short(), e.Issuer)
}

// ExpiredError reports a delegation used past its expiry.
type ExpiredError struct {
	ID     DelegationID
	Expiry time.Time
	At     time.Time
}

func (e *ExpiredError) Error() string {
	return fmt.Sprintf("delegation %s: expired %v (evaluated at %v)", e.ID.Short(), e.Expiry, e.At)
}

// ChainError reports a structural break in a proof chain.
type ChainError struct {
	Index  int
	Reason string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("proof chain step %d: %s", e.Index, e.Reason)
}

// MissingSupportError reports a third-party delegation (or foreign attribute
// setting) lacking a valid support proof for a role the issuer must hold.
type MissingSupportError struct {
	Delegation DelegationID
	Issuer     Entity
	Need       Role
}

func (e *MissingSupportError) Error() string {
	return fmt.Sprintf("delegation %s: issuer %s lacks support proof for %s",
		e.Delegation.Short(), e.Issuer, e.Need)
}

// RevokedError wraps ErrRevoked with the offending delegation.
type RevokedError struct {
	ID DelegationID
}

func (e *RevokedError) Error() string {
	return fmt.Sprintf("delegation %s revoked", e.ID.Short())
}

// Unwrap lets errors.Is(err, ErrRevoked) match.
func (e *RevokedError) Unwrap() error { return ErrRevoked }
