package core

import (
	"fmt"
	"sort"
	"sync"
)

// Directory resolves human-readable entity names to entities and back. The
// concrete syntax of delegations (Table 1/2) refers to entities by name;
// authority always derives from keys, so a directory is only a display and
// parsing aid, never a trust root.
type Directory interface {
	// LookupName resolves a human-readable name.
	LookupName(name string) (Entity, bool)
	// LookupID resolves a fingerprint.
	LookupID(id EntityID) (Entity, bool)
}

// MemDirectory is an in-memory, concurrency-safe Directory.
type MemDirectory struct {
	mu     sync.RWMutex
	byName map[string]Entity
	byID   map[EntityID]Entity
}

var _ Directory = (*MemDirectory)(nil)

// NewDirectory returns an empty directory, optionally pre-populated.
func NewDirectory(entities ...Entity) *MemDirectory {
	d := &MemDirectory{
		byName: make(map[string]Entity),
		byID:   make(map[EntityID]Entity),
	}
	for _, e := range entities {
		d.Add(e)
	}
	return d
}

// Add registers an entity; later registrations win name collisions.
func (d *MemDirectory) Add(e Entity) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byName[e.Name] = e
	d.byID[e.ID()] = e
}

// LookupName implements Directory.
func (d *MemDirectory) LookupName(name string) (Entity, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.byName[name]
	return e, ok
}

// LookupID implements Directory.
func (d *MemDirectory) LookupID(id EntityID) (Entity, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.byID[id]
	return e, ok
}

// Names returns the registered names in sorted order.
func (d *MemDirectory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.byName))
	for n := range d.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DisplayID renders id through the directory, falling back to the short
// fingerprint for unknown entities.
func DisplayID(dir Directory, id EntityID) string {
	if dir != nil {
		if e, ok := dir.LookupID(id); ok {
			return e.Name
		}
	}
	return id.Short()
}

// resolveName maps a name to its EntityID via the directory.
func resolveName(name string, dir Directory) (EntityID, error) {
	if dir == nil {
		return "", fmt.Errorf("no directory to resolve entity name %q", name)
	}
	e, ok := dir.LookupName(name)
	if !ok {
		return "", &UnknownEntityError{Name: name}
	}
	return e.ID(), nil
}

// UnknownEntityError reports a name the directory cannot resolve.
type UnknownEntityError struct {
	Name string
}

func (e *UnknownEntityError) Error() string {
	return fmt.Sprintf("unknown entity name %q", e.Name)
}
