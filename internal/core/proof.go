package core

import (
	"fmt"
	"strings"
	"time"
)

// Proof is a delegation chain demonstrating Subject ⇒ Object, each step
// carrying the recursive support proofs that authorize it (§2, §4.1).
//
// Steps run from the proof's subject towards its object: the first step's
// delegation names the proof subject as its subject; every later step's
// delegation has a role subject equal to the previous step's object; the
// last step's object is the proof object.
type Proof struct {
	Subject Subject     `json:"subject"`
	Object  Role        `json:"object"`
	Steps   []ProofStep `json:"steps"`
}

// ProofStep is one delegation of a chain plus the support proofs that
// authorize it (the issuer's right-of-assignment for third-party
// delegations, and attribute-assignment rights for foreign attribute
// settings).
type ProofStep struct {
	Delegation *Delegation `json:"delegation"`
	Support    []*Proof    `json:"support,omitempty"`
}

// NewProof assembles a proof from ordered steps, deriving subject and
// object from the chain ends.
func NewProof(steps ...ProofStep) (*Proof, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("proof with no steps")
	}
	for i, st := range steps {
		if st.Delegation == nil {
			return nil, fmt.Errorf("proof step %d: nil delegation", i)
		}
	}
	return &Proof{
		Subject: steps[0].Delegation.Subject,
		Object:  steps[len(steps)-1].Delegation.Object,
		Steps:   steps,
	}, nil
}

// Concat joins p with next, which must begin where p ends (next's subject
// role equals p's object). Support proofs are preserved per step.
func (p *Proof) Concat(next *Proof) (*Proof, error) {
	if next.Subject.IsEntity() || next.Subject.Role != p.Object {
		return nil, fmt.Errorf("concat: next proof subject %s does not match object %s", next.Subject, p.Object)
	}
	steps := make([]ProofStep, 0, len(p.Steps)+len(next.Steps))
	steps = append(steps, p.Steps...)
	steps = append(steps, next.Steps...)
	return &Proof{Subject: p.Subject, Object: next.Object, Steps: steps}, nil
}

// Delegations returns every delegation in the proof, including all support
// proofs, depth-first, deduplicated by ID. Proof monitors subscribe to
// exactly this set (§4.2.2).
func (p *Proof) Delegations() []*Delegation {
	seen := make(map[DelegationID]bool)
	var out []*Delegation
	p.visit(seen, &out)
	return out
}

func (p *Proof) visit(seen map[DelegationID]bool, out *[]*Delegation) {
	for _, st := range p.Steps {
		id := st.Delegation.ID()
		if !seen[id] {
			seen[id] = true
			*out = append(*out, st.Delegation)
		}
		for _, sup := range st.Support {
			sup.visit(seen, out)
		}
	}
}

// Aggregate accumulates the valued-attribute modifiers along the primary
// chain (support proofs do not modulate the granted permissions).
func (p *Proof) Aggregate() (Aggregate, error) {
	ag := NewAggregate()
	for _, st := range p.Steps {
		if err := ag.AddAll(st.Delegation.Attributes); err != nil {
			return nil, err
		}
	}
	return ag, nil
}

// ValidateOptions parameterizes proof validation.
type ValidateOptions struct {
	// At is the evaluation instant for expiry checks.
	At time.Time
	// Revoked, if non-nil, reports revoked delegations.
	Revoked func(DelegationID) bool
	// StrictAttributes additionally requires support proofs for attribute
	// settings outside the issuer's namespace.
	StrictAttributes bool
	// MaxDepth bounds support-proof recursion; 0 means DefaultMaxDepth.
	MaxDepth int
	// Constraints, if non-empty, must be satisfied by the proof's
	// aggregated attributes.
	Constraints []Constraint
	// SigVerifier, if non-nil, routes every signature check through a
	// verified-signature memo (internal/sigcache). Cold validation then
	// batch-collects the proof tree's unmemoized delegations and verifies
	// them across a GOMAXPROCS-bounded worker pool before the sequential
	// structural pass, which runs warm.
	SigVerifier SigVerifier
}

// DefaultMaxDepth bounds support-proof recursion when ValidateOptions does
// not set one. Real coalition hierarchies are shallow; the bound exists to
// reject maliciously nested credentials.
const DefaultMaxDepth = 16

// Validate checks the proof end to end: chain structure, signatures,
// expiry, revocation, recursive support proofs, attribute monotonicity, and
// query constraints.
func (p *Proof) Validate(opts ValidateOptions) error {
	depth := opts.MaxDepth
	if depth == 0 {
		depth = DefaultMaxDepth
	}
	if opts.SigVerifier != nil {
		// Warm the memo for the whole tree (primary chain plus recursive
		// support proofs) in parallel; the sequential pass below then pays a
		// hash lookup per signature instead of an Ed25519 verification. Any
		// bad signature re-verifies there and surfaces as *SignatureError at
		// its exact step.
		PrimeDelegations(opts.SigVerifier, p.Delegations())
	}
	if err := p.validate(opts, depth); err != nil {
		return err
	}
	if len(opts.Constraints) > 0 {
		ag, err := p.Aggregate()
		if err != nil {
			return err
		}
		for _, c := range opts.Constraints {
			if !c.Satisfied(ag) {
				return &ConstraintError{Constraint: c, Value: ag.Value(c.Attr, c.Base)}
			}
		}
	}
	return nil
}

func (p *Proof) validate(opts ValidateOptions, depth int) error {
	if depth <= 0 {
		return ErrProofDepth
	}
	if len(p.Steps) == 0 {
		return &ChainError{Index: 0, Reason: "empty proof"}
	}
	if p.Steps[0].Delegation.Subject != p.Subject {
		return &ChainError{Index: 0, Reason: fmt.Sprintf(
			"first delegation subject %s is not proof subject %s",
			p.Steps[0].Delegation.Subject, p.Subject)}
	}
	last := p.Steps[len(p.Steps)-1].Delegation.Object
	if last != p.Object {
		return &ChainError{Index: len(p.Steps) - 1, Reason: fmt.Sprintf(
			"last delegation object %s is not proof object %s", last, p.Object)}
	}

	ag := NewAggregate()
	for i, st := range p.Steps {
		d := st.Delegation
		if i > 0 {
			// Entity subjects terminate chains (§3.1.1: privileges
			// delegated to an entity may not be further delegated), so
			// every interior step must link role-to-role.
			if d.Subject.IsEntity() {
				return &ChainError{Index: i, Reason: "entity subject in chain interior"}
			}
			prev := p.Steps[i-1].Delegation.Object
			if d.Subject.Role != prev {
				return &ChainError{Index: i, Reason: fmt.Sprintf(
					"subject %s does not follow previous object %s", d.Subject, prev)}
			}
		}
		if d.DepthLimit > 0 {
			if after := len(p.Steps) - 1 - i; after > d.DepthLimit {
				return &ChainError{Index: i, Reason: fmt.Sprintf(
					"delegation limits further delegation to %d steps, but %d follow",
					d.DepthLimit, after)}
			}
		}
		if err := p.validateStep(d, st.Support, opts, depth); err != nil {
			return err
		}
		if err := ag.AddAll(d.Attributes); err != nil {
			return err
		}
	}
	return nil
}

// validateStep checks one delegation plus its support proofs.
func (p *Proof) validateStep(d *Delegation, support []*Proof, opts ValidateOptions, depth int) error {
	if err := d.VerifyWith(opts.SigVerifier); err != nil {
		return err
	}
	if !opts.At.IsZero() && d.Expired(opts.At) {
		return &ExpiredError{ID: d.ID(), Expiry: d.Expiry, At: opts.At}
	}
	if opts.Revoked != nil && opts.Revoked(d.ID()) {
		return &RevokedError{ID: d.ID()}
	}
	for _, need := range d.RequiredSupport(opts.StrictAttributes) {
		sup := findSupport(support, d.Issuer.ID(), need)
		if sup == nil {
			return &MissingSupportError{Delegation: d.ID(), Issuer: d.Issuer, Need: need}
		}
		if err := sup.validate(opts, depth-1); err != nil {
			return fmt.Errorf("support proof for %s: %w", need, err)
		}
	}
	return nil
}

// findSupport locates a support proof granting role need to entity issuer.
func findSupport(support []*Proof, issuer EntityID, need Role) *Proof {
	for _, sp := range support {
		if sp == nil {
			continue
		}
		if sp.Object != need {
			continue
		}
		if sp.Subject.IsEntity() && sp.Subject.Entity == issuer {
			return sp
		}
	}
	return nil
}

// Len returns the primary chain length.
func (p *Proof) Len() int { return len(p.Steps) }

// String renders the proof chain compactly.
func (p *Proof) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s => %s [", p.Subject, p.Object)
	for i, st := range p.Steps {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(st.Delegation.String())
		if len(st.Support) > 0 {
			fmt.Fprintf(&b, " (+%d support)", len(st.Support))
		}
	}
	b.WriteString("]")
	return b.String()
}

// ConstraintError reports a proof whose aggregated attributes violate a
// query constraint.
type ConstraintError struct {
	Constraint Constraint
	Value      float64
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("attribute %s evaluates to %s, below required %s",
		e.Constraint.Attr, formatFloat(e.Value), formatFloat(e.Constraint.Minimum))
}
