package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testAttr(name string) AttributeRef {
	return AttributeRef{
		Namespace: EntityID(strings.Repeat("ab", 32)),
		Name:      name,
	}
}

func TestOperatorCheckOperand(t *testing.T) {
	tests := []struct {
		name    string
		op      Operator
		give    float64
		wantErr bool
	}{
		{"subtract zero ok", OpSubtract, 0, false},
		{"subtract positive ok", OpSubtract, 20, false},
		{"subtract negative bad", OpSubtract, -1, true},
		{"multiply one ok", OpMultiply, 1, false},
		{"multiply half ok", OpMultiply, 0.5, false},
		{"multiply zero bad", OpMultiply, 0, true},
		{"multiply above one bad", OpMultiply, 1.5, true},
		{"multiply negative bad", OpMultiply, -0.5, true},
		{"minimum ok", OpMinimum, 100, false},
		{"minimum negative bad", OpMinimum, -5, true},
		{"nan bad", OpMinimum, math.NaN(), true},
		{"unknown op", Operator(99), 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.op.CheckOperand(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("CheckOperand(%v) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestModifierDefaultsAreIdentity(t *testing.T) {
	for _, op := range []Operator{OpSubtract, OpMultiply, OpMinimum} {
		m := NewModifier(op)
		if !m.IsIdentity() {
			t.Errorf("NewModifier(%s) is not identity", op)
		}
		if got := m.Apply(42); got != 42 {
			t.Errorf("identity %s modifier: Apply(42) = %v", op, got)
		}
	}
}

func TestAggregateCaseStudyValues(t *testing.T) {
	// The §5 case study: BW = min(100, 200) = 100, storage = 50-20 = 30,
	// hours = 60*0.3 = 18.
	bw, storage, hours := testAttr("BW"), testAttr("storage"), testAttr("hours")
	ag := NewAggregate()
	settings := []AttributeSetting{
		{Attr: bw, Op: OpMinimum, Value: 100},
		{Attr: storage, Op: OpSubtract, Value: 20},
		{Attr: hours, Op: OpMultiply, Value: 0.3},
		{Attr: bw, Op: OpMinimum, Value: 200},
	}
	if err := ag.AddAll(settings); err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(bw, math.Inf(1)); got != 100 {
		t.Errorf("BW = %v, want 100", got)
	}
	if got := ag.Value(storage, 50); got != 30 {
		t.Errorf("storage = %v, want 30", got)
	}
	if got := ag.Value(hours, 60); got != 18 {
		t.Errorf("hours = %v, want 18", got)
	}
}

func TestAggregateOperatorConflict(t *testing.T) {
	a := testAttr("x")
	ag := NewAggregate()
	if err := ag.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 1}); err != nil {
		t.Fatal(err)
	}
	err := ag.Add(AttributeSetting{Attr: a, Op: OpMultiply, Value: 0.5})
	var conflict *OperatorConflictError
	if err == nil {
		t.Fatal("want operator conflict error")
	}
	if !errors.As(err, &conflict) {
		t.Fatalf("want OperatorConflictError, got %T: %v", err, err)
	}
	if conflict.Bound != OpSubtract || conflict.Got != OpMultiply {
		t.Fatalf("conflict = %+v", conflict)
	}
}

func TestAggregateUntouchedAttributeReturnsBase(t *testing.T) {
	ag := NewAggregate()
	if got := ag.Value(testAttr("unused"), 77); got != 77 {
		t.Fatalf("untouched attribute = %v, want base 77", got)
	}
}

func TestAggregateMerge(t *testing.T) {
	a, b := testAttr("a"), testAttr("b")
	left, right := NewAggregate(), NewAggregate()
	if err := left.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 5}); err != nil {
		t.Fatal(err)
	}
	if err := right.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := right.Add(AttributeSetting{Attr: b, Op: OpMinimum, Value: 9}); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if got := left.Value(a, 100); got != 88 {
		t.Errorf("a = %v, want 88", got)
	}
	if got := left.Value(b, math.Inf(1)); got != 9 {
		t.Errorf("b = %v, want 9", got)
	}
}

func TestAggregateMergeConflict(t *testing.T) {
	a := testAttr("a")
	left, right := NewAggregate(), NewAggregate()
	if err := left.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 5}); err != nil {
		t.Fatal(err)
	}
	if err := right.Add(AttributeSetting{Attr: a, Op: OpMinimum, Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(right); err == nil {
		t.Fatal("want conflict on merge")
	}
}

func TestAggregateCloneIndependent(t *testing.T) {
	a := testAttr("a")
	ag := NewAggregate()
	if err := ag.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 5}); err != nil {
		t.Fatal(err)
	}
	cl := ag.Clone()
	if err := cl.Add(AttributeSetting{Attr: a, Op: OpSubtract, Value: 5}); err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(a, 100); got != 95 {
		t.Fatalf("original aggregate mutated: %v", got)
	}
	if got := cl.Value(a, 100); got != 90 {
		t.Fatalf("clone = %v, want 90", got)
	}
}

func TestAggregateAttrsSorted(t *testing.T) {
	ag := NewAggregate()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := ag.Add(AttributeSetting{Attr: testAttr(name), Op: OpSubtract, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	attrs := ag.Attrs()
	if len(attrs) != 3 || attrs[0].Name != "alpha" || attrs[1].Name != "mid" || attrs[2].Name != "zeta" {
		t.Fatalf("Attrs() = %v", attrs)
	}
}

func TestConstraintSatisfied(t *testing.T) {
	bw := testAttr("BW")
	ag := NewAggregate()
	if err := ag.Add(AttributeSetting{Attr: bw, Op: OpMinimum, Value: 100}); err != nil {
		t.Fatal(err)
	}
	c := Constraint{Attr: bw, Base: math.Inf(1), Minimum: 50}
	if !c.Satisfied(ag) {
		t.Fatal("BW=100 should satisfy minimum 50")
	}
	c.Minimum = 150
	if c.Satisfied(ag) {
		t.Fatal("BW=100 should not satisfy minimum 150")
	}
	if !SatisfiedAll(nil, ag) {
		t.Fatal("no constraints is always satisfied")
	}
	if SatisfiedAll([]Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 150}}, ag) {
		t.Fatal("violated constraint in SatisfiedAll")
	}
}

// Property (§3.2.1/§4.2.3): attribute values are monotone non-increasing as
// more settings accumulate, for every operator and every legal operand.
func TestModifierMonotonicityProperty(t *testing.T) {
	clampOperand := func(op Operator, raw float64) float64 {
		v := math.Abs(raw)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		if op == OpMultiply {
			v = math.Mod(v, 1)
			if v == 0 {
				v = 1 // operand range is (0, 1]
			}
		}
		return v
	}
	for _, op := range []Operator{OpSubtract, OpMultiply, OpMinimum} {
		op := op
		prop := func(rawOperands []float64, rawBase float64) bool {
			base := math.Abs(rawBase)
			if math.IsNaN(base) || math.IsInf(base, 0) {
				base = 1000
			}
			m := NewModifier(op)
			prev := m.Apply(base)
			for _, raw := range rawOperands {
				v := clampOperand(op, raw)
				if err := op.CheckOperand(v); err != nil {
					return false
				}
				m = m.Combine(v)
				cur := m.Apply(base)
				if cur > prev {
					return false
				}
				prev = cur
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("monotonicity violated for %s: %v", op, err)
		}
	}
}

// Property: Merge is equivalent to folding the settings sequentially.
func TestAggregateMergeEquivalenceProperty(t *testing.T) {
	attr := testAttr("p")
	prop := func(raws []float64) bool {
		var vals []float64
		for _, r := range raws {
			v := math.Abs(r)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep operands in a range where float addition is exact, so
			// the property tests semantics rather than float associativity.
			vals = append(vals, math.Trunc(math.Mod(v, 1e6)))
		}
		seq := NewAggregate()
		for _, v := range vals {
			if err := seq.Add(AttributeSetting{Attr: attr, Op: OpSubtract, Value: v}); err != nil {
				return false
			}
		}
		half := len(vals) / 2
		left, right := NewAggregate(), NewAggregate()
		for _, v := range vals[:half] {
			if err := left.Add(AttributeSetting{Attr: attr, Op: OpSubtract, Value: v}); err != nil {
				return false
			}
		}
		for _, v := range vals[half:] {
			if err := right.Add(AttributeSetting{Attr: attr, Op: OpSubtract, Value: v}); err != nil {
				return false
			}
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		return left.Value(attr, 1e9) == seq.Value(attr, 1e9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{100, "100"},
		{0.3, "0.3"},
		{math.Inf(1), "+inf"},
		{-20, "-20"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.give); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestAdjustConstraints(t *testing.T) {
	bw, st, hr := testAttr("BW"), testAttr("storage"), testAttr("hours")
	prefix := NewAggregate()
	for _, s := range []AttributeSetting{
		{Attr: bw, Op: OpMinimum, Value: 40},
		{Attr: st, Op: OpSubtract, Value: 10},
		{Attr: hr, Op: OpMultiply, Value: 0.5},
	} {
		if err := prefix.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	cons := []Constraint{
		{Attr: bw, Base: math.Inf(1), Minimum: 50},
		{Attr: st, Base: 100, Minimum: 50},
		{Attr: hr, Base: 60, Minimum: 10},
		{Attr: testAttr("untouched"), Base: 7, Minimum: 1},
	}
	got := AdjustConstraints(cons, prefix)
	if got[0].Base != 40 { // min(+inf, 40)
		t.Errorf("BW adjusted base = %v, want 40", got[0].Base)
	}
	if got[1].Base != 90 { // 100 - 10
		t.Errorf("storage adjusted base = %v, want 90", got[1].Base)
	}
	if got[2].Base != 30 { // 60 * 0.5
		t.Errorf("hours adjusted base = %v, want 30", got[2].Base)
	}
	if got[3].Base != 7 {
		t.Errorf("untouched base changed: %v", got[3].Base)
	}
	// Originals untouched; empty inputs pass through.
	if cons[0].Base == 40 {
		t.Error("AdjustConstraints mutated its input")
	}
	if out := AdjustConstraints(nil, prefix); out != nil {
		t.Error("nil constraints should pass through")
	}
	if out := AdjustConstraints(cons, NewAggregate()); len(out) != len(cons) || out[0].Base != cons[0].Base {
		t.Error("empty prefix should pass through")
	}
}

// The adjusted constraint on the chain remainder is exactly equivalent to
// the original constraint on the full chain (monotone operators compose).
func TestAdjustConstraintsEquivalenceProperty(t *testing.T) {
	attr := testAttr("q")
	prop := func(rawPrefix, rawRest, rawBase, rawMin float64) bool {
		clamp := func(v float64) float64 {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Trunc(math.Mod(v, 1000))
		}
		prefixVal, restVal := clamp(rawPrefix), clamp(rawRest)
		base, minimum := clamp(rawBase)+1000, clamp(rawMin)

		for _, op := range []Operator{OpSubtract, OpMinimum} {
			prefix, rest, full := NewAggregate(), NewAggregate(), NewAggregate()
			for _, pair := range []struct {
				ag Aggregate
				v  float64
			}{{prefix, prefixVal}, {rest, restVal}, {full, prefixVal}, {full, restVal}} {
				if err := pair.ag.Add(AttributeSetting{Attr: attr, Op: op, Value: pair.v}); err != nil {
					return false
				}
			}
			orig := Constraint{Attr: attr, Base: base, Minimum: minimum}
			adjusted := AdjustConstraints([]Constraint{orig}, prefix)[0]
			if orig.Satisfied(full) != adjusted.Satisfied(rest) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
