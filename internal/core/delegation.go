package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Kind classifies a delegation by the relationship between its issuer and
// its object role's namespace (§3.1).
type Kind int

const (
	// KindSelfCertified: the object role lives in the issuer's namespace.
	// Such delegations need no further authorization; all valid dRBAC
	// proofs are rooted in them.
	KindSelfCertified Kind = iota + 1
	// KindThirdParty: the issuer delegates a role from another entity's
	// namespace and must be accompanied by a support proof showing the
	// issuer holds the object's right-of-assignment role.
	KindThirdParty
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindSelfCertified:
		return "self-certified"
	case KindThirdParty:
		return "third-party"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DelegationID is the stable content hash of a delegation.
type DelegationID string

// Short abbreviates the ID for display.
func (id DelegationID) Short() string {
	if len(id) <= 10 {
		return string(id)
	}
	return string(id[:10])
}

// Delegation is a signed certificate [Subject → Object] Issuer granting the
// subject the permissions of the object role (§2, §3). The zero value is
// not usable; build one with Issue or by deserializing a published
// delegation.
type Delegation struct {
	// Subject is the grantee: an entity or a role.
	Subject Subject `json:"subject"`
	// SubjectEntity carries the key material of an entity subject so the
	// grantee can later be authenticated; nil for role subjects.
	SubjectEntity *Entity `json:"subjectEntity,omitempty"`
	// Object is the granted role (possibly a right-of-assignment or
	// attribute-assignment role).
	Object Role `json:"object"`
	// Issuer signed the delegation; its key verifies Signature.
	Issuer Entity `json:"issuer"`
	// Attributes is the "with" clause (§3.2.1): zero or more valued
	// attribute settings applied alongside the role grant.
	Attributes []AttributeSetting `json:"attributes,omitempty"`
	// IssuedAt is the issuance instant.
	IssuedAt time.Time `json:"issuedAt"`
	// Expiry, if nonzero, is the instant after which the delegation is
	// invalid (Table 2).
	Expiry time.Time `json:"expiry,omitempty"`
	// Nonce uniquifies otherwise identical delegations.
	Nonce uint64 `json:"nonce"`
	// SubjectTag, ObjectTag, and IssuerTag are the discovery tags (§4.2.1).
	SubjectTag *DiscoveryTag `json:"subjectTag,omitempty"`
	ObjectTag  *DiscoveryTag `json:"objectTag,omitempty"`
	IssuerTag  *DiscoveryTag `json:"issuerTag,omitempty"`
	// ActingAs enumerates the assignment roles the issuer relies on for a
	// third-party delegation supporting remote discovery (§4.2.1).
	ActingAs []Role `json:"actingAs,omitempty"`
	// DepthLimit, when positive, bounds transitive trust (the §6 extension
	// the paper sketches): at most DepthLimit further delegations may
	// follow this one in a proof's primary chain. Zero means unlimited.
	DepthLimit int `json:"depthLimit,omitempty"`
	// Signature is the issuer's ed25519 signature over SigningBytes.
	Signature []byte `json:"signature"`

	// id memoizes the content hash. A delegation is immutable once issued
	// or decoded, so the hash is computed at most once; wallets call ID
	// many times per operation (admission, store, graph, events, audit).
	// Code that copies a delegation by value to tamper with it (tests do)
	// must do so before the first ID call, or the copy inherits the memo.
	id atomic.Value
}

// Template carries the caller-controlled fields of a new delegation; Issue
// fills in the issuer, timestamps, nonce, and signature.
type Template struct {
	Subject       Subject
	SubjectEntity *Entity
	Object        Role
	Attributes    []AttributeSetting
	Expiry        time.Time
	SubjectTag    *DiscoveryTag
	ObjectTag     *DiscoveryTag
	IssuerTag     *DiscoveryTag
	ActingAs      []Role
	DepthLimit    int
}

// Issue creates and signs a delegation from issuer.
func Issue(issuer *Identity, tmpl Template, now time.Time) (*Delegation, error) {
	var nonceBuf [8]byte
	if _, err := rand.Read(nonceBuf[:]); err != nil {
		return nil, fmt.Errorf("issue delegation: nonce: %w", err)
	}
	d := &Delegation{
		Subject:       tmpl.Subject,
		SubjectEntity: tmpl.SubjectEntity,
		Object:        tmpl.Object,
		Issuer:        issuer.Entity(),
		Attributes:    append([]AttributeSetting(nil), tmpl.Attributes...),
		IssuedAt:      now.UTC().Truncate(time.Microsecond),
		Expiry:        tmpl.Expiry,
		Nonce:         binary.BigEndian.Uint64(nonceBuf[:]),
		SubjectTag:    tmpl.SubjectTag,
		ObjectTag:     tmpl.ObjectTag,
		IssuerTag:     tmpl.IssuerTag,
		ActingAs:      append([]Role(nil), tmpl.ActingAs...),
		DepthLimit:    tmpl.DepthLimit,
	}
	if !d.Expiry.IsZero() {
		d.Expiry = d.Expiry.UTC().Truncate(time.Microsecond)
	}
	if err := d.ValidateStructure(); err != nil {
		return nil, fmt.Errorf("issue delegation: %w", err)
	}
	d.Signature = issuer.SignBytes(d.SigningBytes())
	return d, nil
}

// Kind classifies the delegation (§3.1.1): self-certified when the object
// role's namespace is the issuer itself, third-party otherwise.
func (d *Delegation) Kind() Kind {
	if d.Object.Namespace == d.Issuer.ID() {
		return KindSelfCertified
	}
	return KindThirdParty
}

// IsAssignment reports whether the delegation grants a right-of-assignment
// role (its object carries a tick, §3.1.2).
func (d *Delegation) IsAssignment() bool { return d.Object.IsAssignment() }

// ID returns the delegation's content hash. The hash covers the signing
// bytes, which include every semantic field. The result is memoized; a
// concurrent first call recomputes the same value harmlessly.
func (d *Delegation) ID() DelegationID {
	if v := d.id.Load(); v != nil {
		return v.(DelegationID)
	}
	id := DelegationID(hashHex(d.SigningBytes()))
	d.id.Store(id)
	return id
}

// ValidateStructure checks well-formedness without verifying the signature.
func (d *Delegation) ValidateStructure() error {
	if err := d.Subject.Validate(); err != nil {
		return fmt.Errorf("subject: %w", err)
	}
	if err := d.Object.Validate(); err != nil {
		return fmt.Errorf("object: %w", err)
	}
	if len(d.Issuer.Key) == 0 {
		return fmt.Errorf("issuer: missing public key")
	}
	if d.Subject.IsEntity() {
		if d.SubjectEntity != nil && d.SubjectEntity.ID() != d.Subject.Entity {
			return fmt.Errorf("subject entity key does not match subject fingerprint")
		}
	} else if d.SubjectEntity != nil {
		return fmt.Errorf("subject entity key attached to role subject")
	}
	// A delegation must not be trivially circular.
	if !d.Subject.IsEntity() && d.Subject.Role == d.Object {
		return fmt.Errorf("subject and object are the same role %s", d.Object)
	}
	for _, s := range d.Attributes {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("attribute setting: %w", err)
		}
	}
	if !d.Expiry.IsZero() && !d.IssuedAt.IsZero() && d.Expiry.Before(d.IssuedAt) {
		return fmt.Errorf("expiry %v precedes issuance %v", d.Expiry, d.IssuedAt)
	}
	for _, tag := range []*DiscoveryTag{d.SubjectTag, d.ObjectTag, d.IssuerTag} {
		if tag == nil {
			continue
		}
		if err := tag.Validate(); err != nil {
			return err
		}
	}
	for _, r := range d.ActingAs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("acting-as role: %w", err)
		}
		if !r.IsAssignment() {
			return fmt.Errorf("acting-as role %s is not an assignment role", r)
		}
	}
	if d.DepthLimit < 0 {
		return fmt.Errorf("negative depth limit %d", d.DepthLimit)
	}
	return nil
}

// Verify checks structure and the issuer's signature. A failure is a
// *StructureError (malformed) or a *SignatureError (bad signature), so
// callers can triage the two.
func (d *Delegation) Verify() error { return d.VerifyWith(nil) }

// VerifyWith is Verify with signature checks routed through v, typically a
// process-wide verified-signature memo (internal/sigcache). A nil v
// verifies directly.
func (d *Delegation) VerifyWith(v SigVerifier) error {
	if err := d.ValidateStructure(); err != nil {
		return &StructureError{ID: d.ID(), Err: err}
	}
	msg := d.SigningBytes()
	ok := false
	if v != nil {
		ok = v.VerifySig(d.Issuer.Key, msg, d.Signature)
	} else {
		ok = VerifyBytes(d.Issuer, msg, d.Signature)
	}
	if !ok {
		return &SignatureError{ID: d.ID(), Issuer: d.Issuer}
	}
	return nil
}

// Expired reports whether the delegation's expiry has passed at instant at.
func (d *Delegation) Expired(at time.Time) bool {
	return !d.Expiry.IsZero() && at.After(d.Expiry)
}

// RequiredSupport lists the roles the issuer must provably hold for this
// delegation to be authorized beyond its signature:
//
//   - for a third-party delegation, the object's right-of-assignment role
//     (§3.1.2);
//   - for every attribute setting outside the issuer's namespace, the
//     attribute's assignment role (Table 2), when strict attribute checking
//     is enabled.
func (d *Delegation) RequiredSupport(strictAttributes bool) []Role {
	var need []Role
	if d.Kind() == KindThirdParty {
		need = append(need, d.Object.Assignment())
	}
	if strictAttributes {
		issuer := d.Issuer.ID()
		for _, s := range d.Attributes {
			if s.Attr.Namespace != issuer {
				need = append(need, s.Attr.AssignmentRole(s.Op))
			}
		}
	}
	return need
}

// String renders the delegation with abbreviated fingerprints. Use Printer
// for name-resolved output.
func (d *Delegation) String() string { return d.Format(nil) }
