package core

import (
	"fmt"
	"strings"
)

// Role names a class of permissions inside an entity's namespace (§2).
//
// A tick mark (Tick > 0) denotes a right-of-assignment role: R' is the right
// to delegate R, R” the right to delegate R', and so on (§3.1.2 treats the
// right of assignment "as if it were just another role itself").
//
// When Attr is true, the role names the right to set a valued attribute in
// future delegations (Table 2, "Delegation of Assignment for Valued
// Attributes"): the attribute itself is not a role, but the right to set it
// is, so such roles always carry Tick >= 1 and record the attribute's bound
// operator.
type Role struct {
	// Namespace is the entity whose namespace contains the role.
	Namespace EntityID
	// Name is the local name inside the namespace.
	Name string
	// Tick counts right-of-assignment marks (').
	Tick int
	// Attr marks attribute-assignment roles.
	Attr bool
	// Op is the operator bound to the attribute; meaningful only when Attr.
	Op Operator
}

// NewRole builds a plain privilege role Namespace.Name.
func NewRole(ns EntityID, name string) Role {
	return Role{Namespace: ns, Name: name}
}

// Assignment returns the right-of-assignment role for r (one more tick).
func (r Role) Assignment() Role {
	r.Tick++
	return r
}

// Base returns r with one tick removed. Calling Base on an untick'd role
// returns it unchanged.
func (r Role) Base() Role {
	if r.Tick > 0 {
		r.Tick--
	}
	return r
}

// IsAssignment reports whether r is a right-of-assignment role.
func (r Role) IsAssignment() bool { return r.Tick > 0 }

// IsZero reports whether r is the zero role.
func (r Role) IsZero() bool { return r.Namespace == "" && r.Name == "" }

// Validate checks structural well-formedness.
func (r Role) Validate() error {
	if !r.Namespace.Valid() {
		return fmt.Errorf("role %q: invalid namespace %q", r.Name, r.Namespace)
	}
	if r.Name == "" {
		return fmt.Errorf("role in namespace %s: empty name", r.Namespace.Short())
	}
	if strings.ContainsAny(r.Name, " .[]<>'\n\t") {
		return fmt.Errorf("role name %q contains reserved characters", r.Name)
	}
	if r.Tick < 0 {
		return fmt.Errorf("role %q: negative tick", r.Name)
	}
	if r.Attr {
		if r.Tick < 1 {
			return fmt.Errorf("attribute-assignment role %q must carry at least one tick", r.Name)
		}
		if !r.Op.Valid() {
			return fmt.Errorf("attribute-assignment role %q: invalid operator", r.Name)
		}
	}
	if !r.Attr && r.Op != 0 {
		return fmt.Errorf("role %q: operator set on non-attribute role", r.Name)
	}
	return nil
}

// String renders the role with the namespace fingerprint abbreviated, e.g.
// "a1b2c3d4.member'". Use Printer for name-resolved rendering.
func (r Role) String() string {
	var b strings.Builder
	b.WriteString(r.Namespace.Short())
	b.WriteByte('.')
	b.WriteString(r.Name)
	if r.Attr {
		b.WriteByte(' ')
		b.WriteString(r.Op.String())
		b.WriteByte('=')
	}
	b.WriteString(strings.Repeat("'", r.Tick))
	return b.String()
}

// Subject identifies the grantee of a delegation: either a bare entity or a
// role (§3.1.1). The zero Subject is invalid. Subject is comparable and is
// used directly as a vertex key in delegation graphs.
type Subject struct {
	// Entity is set (and Role zero) for entity subjects.
	Entity EntityID
	// Role is set (and Entity empty) for role subjects.
	Role Role
}

// SubjectEntity builds an entity subject.
func SubjectEntity(id EntityID) Subject { return Subject{Entity: id} }

// SubjectRole builds a role subject.
func SubjectRole(r Role) Subject { return Subject{Role: r} }

// IsEntity reports whether the subject is a bare entity.
func (s Subject) IsEntity() bool { return s.Entity != "" }

// IsZero reports whether the subject is unset.
func (s Subject) IsZero() bool { return s.Entity == "" && s.Role.IsZero() }

// Validate checks structural well-formedness.
func (s Subject) Validate() error {
	switch {
	case s.IsZero():
		return fmt.Errorf("empty subject")
	case s.Entity != "" && !s.Role.IsZero():
		return fmt.Errorf("subject is both entity and role")
	case s.Entity != "":
		if !s.Entity.Valid() {
			return fmt.Errorf("subject entity %q: invalid fingerprint", s.Entity)
		}
		return nil
	default:
		return s.Role.Validate()
	}
}

// String renders the subject.
func (s Subject) String() string {
	if s.IsEntity() {
		return s.Entity.Short()
	}
	return s.Role.String()
}
