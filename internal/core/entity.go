// Package core implements the dRBAC trust-management model: PKI entities,
// roles, delegations with valued attributes, and proofs.
//
// The model follows Freudenthal et al., "dRBAC: Distributed Role-based
// Access Control for Dynamic Coalition Environments" (ICDCS 2002).
// Entities are public keys that define namespaces; roles are names inside a
// namespace; delegations are signed certificates of the form
// [Subject → Object] Issuer that grant the subject the permissions of the
// object role; proofs are delegation chains, with recursive support proofs
// authorizing third-party delegations.
package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// EntityID is the stable identity of an entity: the lowercase hex SHA-256
// fingerprint of its ed25519 public key. Names are informational only; two
// entities are the same if and only if their IDs are equal.
type EntityID string

// Short returns an abbreviated fingerprint for display.
func (id EntityID) Short() string {
	if len(id) <= 8 {
		return string(id)
	}
	return string(id[:8])
}

// Valid reports whether id has the shape of a fingerprint.
func (id EntityID) Valid() bool {
	if len(id) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// Entity is a principal or resource: a public key plus a human-readable
// name. dRBAC does not distinguish resource owners from principals (§2).
type Entity struct {
	// Name is a human-readable label. It carries no authority.
	Name string
	// Key is the entity's ed25519 public key and is its real identity.
	Key ed25519.PublicKey
}

// idMemoCap bounds the process-wide fingerprint memo; a coalition touches
// far fewer distinct keys than this, and a pathological flood of principals
// resets the table wholesale rather than growing without bound.
const idMemoCap = 4096

// idMemo caches key → fingerprint. Hashing is deterministic, so the memo is
// sound; it exists because Entity.ID sits on every wallet hot path (graph
// inserts, admission checks, audit records) and the sha256+hex pair costs an
// allocation and real time per call.
var idMemo = struct {
	sync.RWMutex
	m map[string]EntityID
}{m: make(map[string]EntityID, 256)}

// ID returns the entity's fingerprint, memoized process-wide by key.
func (e Entity) ID() EntityID {
	idMemo.RLock()
	id, ok := idMemo.m[string(e.Key)]
	idMemo.RUnlock()
	if ok {
		return id
	}
	sum := sha256.Sum256(e.Key)
	id = EntityID(hex.EncodeToString(sum[:]))
	idMemo.Lock()
	if len(idMemo.m) >= idMemoCap {
		idMemo.m = make(map[string]EntityID, 256)
	}
	idMemo.m[string(e.Key)] = id
	idMemo.Unlock()
	return id
}

// String renders the entity as name(shortid).
func (e Entity) String() string {
	return fmt.Sprintf("%s(%s)", e.Name, e.ID().Short())
}

// Equal reports whether two entities have the same key.
func (e Entity) Equal(other Entity) bool {
	return e.ID() == other.ID()
}

// Identity is an entity together with its private key. It is the only type
// able to issue (sign) delegations or answer authentication challenges.
type Identity struct {
	entity Entity
	key    ed25519.PrivateKey
}

// NewIdentity generates a fresh identity with the given human-readable name.
func NewIdentity(name string) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate key: %w", err)
	}
	return &Identity{
		entity: Entity{Name: name, Key: pub},
		key:    priv,
	}, nil
}

// IdentityFromSeed derives a deterministic identity from a 32-byte seed.
// It is intended for tests and reproducible simulations.
func IdentityFromSeed(name string, seed []byte) (*Identity, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("identity seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return nil, errors.New("identity: unexpected public key type")
	}
	return &Identity{
		entity: Entity{Name: name, Key: pub},
		key:    priv,
	}, nil
}

// Entity returns the public half of the identity.
func (id *Identity) Entity() Entity { return id.entity }

// ID returns the identity's fingerprint.
func (id *Identity) ID() EntityID { return id.entity.ID() }

// Name returns the identity's human-readable name.
func (id *Identity) Name() string { return id.entity.Name }

// SignBytes signs arbitrary bytes with the identity's private key. It is
// used both for delegation issuance and for transport authentication.
func (id *Identity) SignBytes(msg []byte) []byte {
	return ed25519.Sign(id.key, msg)
}

// VerifyBytes checks sig over msg against the entity's public key.
func VerifyBytes(e Entity, msg, sig []byte) bool {
	if len(e.Key) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(e.Key, msg, sig)
}
