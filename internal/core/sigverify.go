package core

import (
	"runtime"
	"sync"
)

// SigVerifier abstracts Ed25519 signature verification so callers can
// interpose a memo (internal/sigcache): delegations are immutable, so a
// triple that verified once verifies forever. A nil SigVerifier anywhere it
// is accepted means direct, unmemoized verification.
type SigVerifier interface {
	// VerifySig reports whether sig is a valid signature over msg by the
	// public key pub.
	VerifySig(pub, msg, sig []byte) bool
	// HasVerified reports whether a prior VerifySig success for the exact
	// triple is memoized, without verifying. Proof validation uses it to
	// batch-collect the delegations that still need real verification.
	HasVerified(pub, msg, sig []byte) bool
}

// primeParallelMin is the number of unverified signatures below which
// PrimeDelegations verifies inline: goroutine fan-out costs more than one
// or two Ed25519 checks.
const primeParallelMin = 3

// PrimeDelegations batch-verifies the signatures of ds through v, fanning
// the unmemoized ones across a runtime.GOMAXPROCS-bounded worker pool. It
// only warms v's memo — failures are not reported here; they resurface as
// typed *SignatureError values when the caller's sequential validation pass
// re-checks each delegation (a cheap memo lookup for the successes).
//
// Callers with many independent credentials to admit — a proof tree, a
// discovery round's fetched sub-proofs, a replica snapshot — prime first so
// cold validation runs at aggregate core throughput instead of one
// signature at a time.
func PrimeDelegations(v SigVerifier, ds []*Delegation) {
	if v == nil {
		return
	}
	type job struct{ pub, msg, sig []byte }
	var pending []job
	for _, d := range ds {
		if d == nil {
			continue
		}
		msg := d.SigningBytes()
		if !v.HasVerified(d.Issuer.Key, msg, d.Signature) {
			pending = append(pending, job{d.Issuer.Key, msg, d.Signature})
		}
	}
	if len(pending) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pending) {
		workers = len(pending)
	}
	if len(pending) < primeParallelMin || workers < 2 {
		for _, j := range pending {
			v.VerifySig(j.pub, j.msg, j.sig)
		}
		return
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				v.VerifySig(j.pub, j.msg, j.sig)
			}
		}()
	}
	for _, j := range pending {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
}
