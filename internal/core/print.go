package core

import (
	"fmt"
	"strings"
	"time"
)

// Printer renders model objects with entity names resolved through a
// directory, matching the paper's concrete syntax.
type Printer struct {
	// Dir resolves fingerprints to names; nil falls back to short
	// fingerprints.
	Dir Directory
}

// Role renders a role, e.g. "BigISP.member'" or "AirNet.storage -= '".
func (pr Printer) Role(r Role) string {
	var b strings.Builder
	b.WriteString(DisplayID(pr.Dir, r.Namespace))
	b.WriteByte('.')
	b.WriteString(r.Name)
	if r.Attr {
		b.WriteByte(' ')
		b.WriteString(r.Op.String())
		b.WriteString("= ")
	}
	b.WriteString(strings.Repeat("'", r.Tick))
	return b.String()
}

// Subject renders an entity or role subject.
func (pr Printer) Subject(s Subject) string {
	if s.IsEntity() {
		return DisplayID(pr.Dir, s.Entity)
	}
	return pr.Role(s.Role)
}

// Setting renders one attribute clause, e.g. "AirNet.BW <= 100".
func (pr Printer) Setting(s AttributeSetting) string {
	return fmt.Sprintf("%s.%s %s= %s",
		DisplayID(pr.Dir, s.Attr.Namespace), s.Attr.Name, s.Op, formatFloat(s.Value))
}

// Tag renders a discovery tag with its auth role name-resolved.
func (pr Printer) Tag(t *DiscoveryTag) string {
	if t == nil {
		return ""
	}
	n := t.Normalize()
	role := "-"
	if !n.AuthRole.IsZero() {
		role = fmt.Sprintf("%s.%s", DisplayID(pr.Dir, n.AuthRole.Namespace), n.AuthRole.Name)
	}
	return fmt.Sprintf("<%s:%s:%d:%s%s>", n.Home, role, int(n.TTL/time.Second), n.Subject, n.Object)
}

// Delegation renders the full bracketed form.
func (pr Printer) Delegation(d *Delegation) string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(pr.Subject(d.Subject))
	b.WriteString(pr.Tag(d.SubjectTag))
	b.WriteString(" -> ")
	b.WriteString(pr.Role(d.Object))
	b.WriteString(pr.Tag(d.ObjectTag))
	for i, s := range d.Attributes {
		if i == 0 {
			b.WriteString(" with ")
		} else {
			b.WriteString(" and ")
		}
		b.WriteString(pr.Setting(s))
	}
	b.WriteString("] ")
	b.WriteString(DisplayID(pr.Dir, d.Issuer.ID()))
	b.WriteString(pr.Tag(d.IssuerTag))
	if !d.Expiry.IsZero() {
		fmt.Fprintf(&b, " <expiry:%s>", d.Expiry.UTC().Format(time.RFC3339))
	}
	if d.DepthLimit > 0 {
		fmt.Fprintf(&b, " <depth:%d>", d.DepthLimit)
	}
	if len(d.ActingAs) > 0 {
		b.WriteString(" <acting-as:")
		for i, r := range d.ActingAs {
			if i > 0 {
				b.WriteString(",")
			}
			// Render without the attribute-form spaces so the annotation
			// stays a single token.
			b.WriteString(DisplayID(pr.Dir, r.Namespace))
			b.WriteByte('.')
			b.WriteString(r.Name)
			if r.Attr {
				b.WriteString(r.Op.String())
				b.WriteString("=")
			}
			b.WriteString(strings.Repeat("'", r.Tick))
		}
		b.WriteString(">")
	}
	return b.String()
}

// Proof renders a proof chain with support-proof counts.
func (pr Printer) Proof(p *Proof) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s => %s\n", pr.Subject(p.Subject), pr.Role(p.Object))
	pr.writeProof(&b, p, 1)
	return b.String()
}

func (pr Printer) writeProof(b *strings.Builder, p *Proof, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, st := range p.Steps {
		b.WriteString(pad)
		b.WriteString(pr.Delegation(st.Delegation))
		b.WriteByte('\n')
		for _, sup := range st.Support {
			fmt.Fprintf(b, "%s  support: %s => %s\n", pad, pr.Subject(sup.Subject), pr.Role(sup.Object))
			pr.writeProof(b, sup, indent+2)
		}
	}
}

// Format renders d through an optional directory; it backs
// Delegation.String.
func (d *Delegation) Format(dir Directory) string {
	return Printer{Dir: dir}.Delegation(d)
}
