package remote

import (
	"context"
	"testing"
	"time"

	"drbac/internal/transport"
	"drbac/internal/wire"
)

// recvWithin waits for one frame, failing the test if nothing happens.
func recvWithin(t *testing.T, conn transport.Conn, d time.Duration) ([]byte, error) {
	t.Helper()
	type res struct {
		frame []byte
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := conn.Recv()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		return r.frame, r.err
	case <-time.After(d):
		t.Fatal("recv timed out")
		return nil, nil
	}
}

// A frame in the wrong codec mid-stream — here raw JSON on a connection that
// negotiated binary — is a protocol violation: the server answers nothing and
// drops the connection rather than guessing at the framing.
func TestMidStreamJSONFrameOnBinaryConnectionDropsIt(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	e.serve("wallet.bigisp", "BigISP")
	conn, err := e.net.DialerCodec(e.id("Maria"), transport.CodecPolicy{}).
		Dial(context.Background(), "wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Codec() != transport.CodecBinary {
		t.Fatalf("negotiated %q, want binary", conn.Codec())
	}
	bin := wire.CodecFor(transport.CodecBinary)

	// Prove the connection works first: a binary ping round-trips.
	frame, err := bin.Encode(wire.TPing, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
	respFrame, err := recvWithin(t, conn, 2*time.Second)
	if err != nil {
		t.Fatalf("binary ping got no response: %v", err)
	}
	env, err := bin.Decode(respFrame)
	if err != nil || env.Type != wire.TPong {
		t.Fatalf("ping response = %+v, %v", env, err)
	}

	// Now a JSON envelope, valid in itself but wrong for this connection.
	jsonFrame, err := wire.CodecFor(transport.CodecJSON).Encode(wire.TPing, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(jsonFrame); err != nil {
		t.Fatal(err)
	}
	if _, err := recvWithin(t, conn, 2*time.Second); err == nil {
		t.Fatal("server kept the connection after a wrong-codec frame")
	}
}

// The mirror case: a binary-magic frame on a JSON-negotiated connection is
// equally fatal.
func TestMidStreamBinaryFrameOnJSONConnectionDropsIt(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	e.serve("wallet.bigisp", "BigISP")
	conn, err := e.net.DialerCodec(e.id("Maria"),
		transport.CodecPolicy{Advertise: []string{transport.CodecJSON}}).
		Dial(context.Background(), "wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Codec() != transport.CodecJSON {
		t.Fatalf("negotiated %q, want json", conn.Codec())
	}
	binFrame, err := wire.CodecFor(transport.CodecBinary).Encode(wire.TPing, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(binFrame); err != nil {
		t.Fatal(err)
	}
	if _, err := recvWithin(t, conn, 2*time.Second); err == nil {
		t.Fatal("server kept the connection after a binary frame on a JSON connection")
	}
}
