package remote

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"drbac/internal/bufpool"
	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/obs"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wire"
)

// DefaultCallTimeout bounds how long a client waits for a response.
const DefaultCallTimeout = 30 * time.Second

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("remote: client closed")

// Client is a connection to a remote wallet. It multiplexes concurrent
// requests and dispatches subscription pushes to registered handlers.
type Client struct {
	conn transport.Conn
	// codec is the wire codec negotiated for conn during the transport
	// handshake; every frame on this connection uses it.
	codec wire.Codec
	// CallTimeout bounds each request; zero means DefaultCallTimeout.
	CallTimeout time.Duration
	// Obs, if set before the client is used, receives connection-failure
	// logs (a nil Obs discards them).
	Obs *obs.Obs

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Envelope
	notify  map[core.DelegationID]map[int]func(subs.Event)
	nextSub int
	closed  bool
	// stream, when set, receives every notification push raw (seq and
	// bundle included) before per-delegation handlers run — the follower
	// replica's changelog feed (§9). At most one per client.
	stream func(wire.NotifyPush)

	// pushQueue preserves notification order while keeping the read loop
	// responsive; a dedicated dispatcher goroutine drains it.
	pushQueue chan wire.NotifyPush
	done      chan struct{}
	wg        sync.WaitGroup

	// broken flips when the read loop exits for any reason; the connection
	// can never carry another call, so pool managers evict it.
	broken atomic.Bool

	// clusterEpoch holds the shard map epoch the server advertised in its
	// cluster-hello push; 0 means the peer never advertised (not a
	// cluster member, or an older server).
	clusterEpoch atomic.Uint64
	// clusterShard holds the advertised shard ID + 1 (so 0 = none).
	clusterShard atomic.Int64
}

// Dial connects to a remote wallet at addr. Cancellation of ctx aborts the
// connect and handshake; it does not bound the lifetime of the returned
// client (each call carries its own context).
func Dial(ctx context.Context, d transport.Dialer, addr string) (*Client, error) {
	conn, err := d.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:      conn,
		codec:     wire.CodecFor(conn.Codec()),
		pending:   make(map[uint64]chan wire.Envelope),
		notify:    make(map[core.DelegationID]map[int]func(subs.Event)),
		pushQueue: make(chan wire.NotifyPush, 256),
		done:      make(chan struct{}),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.pushLoop()
	return c, nil
}

// Peer returns the authenticated identity of the remote wallet.
func (c *Client) Peer() core.Entity { return c.conn.Peer() }

// WireCodec names the codec negotiated for this connection ("json" or
// "binary").
func (c *Client) WireCodec() string { return c.conn.Codec() }

// Healthy reports whether the connection can still carry calls: false once
// the read loop has exited (peer hung up, protocol error, or Close).
func (c *Client) Healthy() bool { return !c.broken.Load() }

// Close tears the connection down. Pending calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	_ = c.conn.Close()
	c.wg.Wait()
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	defer c.broken.Store(true)
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.failPending(err)
			return
		}
		env, err := c.codec.Decode(frame)
		if err != nil {
			c.failPending(err)
			return
		}
		if env.Type == wire.TClusterHello {
			var hello wire.ShardMapResp
			if err := wire.DecodeBody(env, &hello); err == nil {
				c.clusterEpoch.Store(hello.Epoch)
				c.clusterShard.Store(int64(hello.Shard) + 1)
			}
			continue
		}
		if env.Type == wire.TNotify {
			var push wire.NotifyPush
			err := wire.DecodeBody(env, &push)
			// The decoded push owns no part of the frame; recycle it. The
			// replica changelog stream makes this the client's hottest
			// receive path.
			bufpool.Put(frame)
			if err != nil {
				// A malformed push is a server bug or wire corruption; the
				// subscription it belonged to silently goes quiet, so make
				// the drop observable instead of discarding it.
				c.Obs.Counter("drbac_remote_push_decode_errors_total").Inc()
				c.Obs.Log().Warn("remote push dropped: undecodable body",
					"peer", c.conn.Peer().ID().Short(), "error", err)
				continue
			}
			select {
			case c.pushQueue <- push:
			case <-c.done:
				return
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

func (c *Client) pushLoop() {
	defer c.wg.Done()
	for {
		select {
		case push := <-c.pushQueue:
			c.dispatchPush(push)
		case <-c.done:
			return
		}
	}
}

func (c *Client) dispatchPush(push wire.NotifyPush) {
	c.mu.Lock()
	stream := c.stream
	c.mu.Unlock()
	if stream != nil {
		stream(push)
	}
	ev := subs.Event{Delegation: push.Delegation, At: push.At, Seq: push.Seq}
	switch push.Kind {
	case "revoked":
		ev.Kind = subs.Revoked
	case "expired":
		ev.Kind = subs.Expired
	case "renewed":
		ev.Kind = subs.Renewed
	case "stale":
		ev.Kind = subs.Stale
	case "published":
		ev.Kind = subs.Published
	default:
		return
	}
	c.mu.Lock()
	m := c.notify[push.Delegation]
	handlers := make([]func(subs.Event), 0, len(m))
	for _, fn := range m {
		handlers = append(handlers, fn)
	}
	c.mu.Unlock()
	for _, fn := range handlers {
		fn(ev)
	}
}

func (c *Client) failPending(err error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan wire.Envelope)
	closed := c.closed
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	// Recv errors during an orderly Close are expected; anything else is a
	// dropped peer worth surfacing (the failed calls only report
	// ErrClientClosed, not the cause).
	if !closed {
		c.Obs.Log().Warn("remote connection lost",
			"peer", c.conn.Peer().ID().Short(), "pending", len(pending), "error", err)
	}
}

// call sends one request and waits for the matching response. It returns
// early if ctx is canceled; CallTimeout still applies as an upper bound so a
// background context cannot hang a call forever.
func (c *Client) call(ctx context.Context, t wire.MsgType, body any) (wire.Envelope, error) {
	if err := ctx.Err(); err != nil {
		return wire.Envelope{}, fmt.Errorf("remote %s: %w", t, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Envelope{}, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	frame, err := c.codec.Encode(t, id, body)
	if err == nil {
		err = c.conn.Send(frame)
		// Send fully consumes the frame before returning, so the encode
		// buffer can go straight back to the pool either way.
		bufpool.Put(frame)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Envelope{}, fmt.Errorf("remote %s: %w", t, err)
	}

	timeout := c.CallTimeout
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	select {
	case env, ok := <-ch:
		if !ok {
			return wire.Envelope{}, fmt.Errorf("remote %s: %w", t, ErrClientClosed)
		}
		if env.Type == wire.TError {
			var er wire.ErrorResp
			if err := wire.DecodeBody(env, &er); err != nil {
				return wire.Envelope{}, err
			}
			if er.Redirect != nil {
				return wire.Envelope{}, &RedirectError{Msg: fmt.Sprintf("remote %s: %s", t, er.Message), Redirect: *er.Redirect}
			}
			if er.NoProof {
				return wire.Envelope{}, fmt.Errorf("remote %s: %s: %w", t, er.Message, core.ErrNoProof)
			}
			return wire.Envelope{}, fmt.Errorf("remote %s: %s", t, er.Message)
		}
		return env, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Envelope{}, fmt.Errorf("remote %s: timeout after %v", t, timeout)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Envelope{}, fmt.Errorf("remote %s: %w", t, ctx.Err())
	case <-c.done:
		return wire.Envelope{}, ErrClientClosed
	}
}

// Ping round-trips a liveness probe.
func (c *Client) Ping(ctx context.Context) error {
	env, err := c.call(ctx, wire.TPing, nil)
	if err != nil {
		return err
	}
	if env.Type != wire.TPong {
		return fmt.Errorf("remote ping: unexpected response %q", env.Type)
	}
	return nil
}

// Publish stores a delegation (with support proofs) in the remote wallet.
// A positive ttl marks it a TTL-coherent cached copy there.
func (c *Client) Publish(ctx context.Context, d *core.Delegation, support []*core.Proof, ttl time.Duration) error {
	_, err := c.call(ctx, wire.TPublish, wire.PublishReq{
		Delegation: d,
		Support:    support,
		TTLSeconds: int(ttl / time.Second),
	})
	return err
}

// PublishSharded is Publish stamped with the caller's shard map epoch: a
// cluster member refuses the request with a *RedirectError when the
// epoch is stale or it does not own the delegation's subject key.
func (c *Client) PublishSharded(ctx context.Context, d *core.Delegation, support []*core.Proof, epoch uint64) error {
	_, err := c.call(ctx, wire.TPublish, wire.PublishReq{
		Delegation: d,
		Support:    support,
		ShardEpoch: epoch,
	})
	return err
}

// RevokeSharded is Revoke stamped with the caller's shard map epoch.
func (c *Client) RevokeSharded(ctx context.Context, id core.DelegationID, epoch uint64) error {
	_, err := c.call(ctx, wire.TRevoke, wire.RevokeReq{Delegation: id, ShardEpoch: epoch})
	return err
}

// ShardMap fetches the peer's current shard map (serialized in
// resp.Map). Non-clustered peers answer with an error.
func (c *Client) ShardMap(ctx context.Context) (wire.ShardMapResp, error) {
	env, err := c.call(ctx, wire.TShardMap, struct{}{})
	if err != nil {
		return wire.ShardMapResp{}, err
	}
	var resp wire.ShardMapResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.ShardMapResp{}, err
	}
	return resp, nil
}

// ClusterEpoch reports the shard map epoch the peer advertised on
// connect (cluster-hello push); ok is false when the peer is not a
// cluster member (or predates clustering). The advertisement races the
// first calls on a fresh connection — treat a false as "unknown yet",
// not "definitely unclustered", until some response has round-tripped.
func (c *Client) ClusterEpoch() (epoch uint64, shard int, ok bool) {
	s := c.clusterShard.Load()
	if s == 0 {
		return 0, 0, false
	}
	return c.clusterEpoch.Load(), int(s - 1), true
}

// QueryDirect asks the remote wallet for a proof subject ⇒ object.
func (c *Client) QueryDirect(ctx context.Context, subject core.Subject, object core.Role, constraints []core.Constraint, direction graph.Direction) (*core.Proof, error) {
	return c.QueryDirectTraced(ctx, obs.TraceContext{}, subject, object, constraints, direction)
}

// QueryDirectTraced is QueryDirect carrying the caller's trace context: the
// serving wallet logs the request (and runs its query) under the caller's
// trace and parents its serve span under the caller's span, so a
// multi-wallet discovery reads as one nested trace across every wallet it
// touched.
func (c *Client) QueryDirectTraced(ctx context.Context, tc obs.TraceContext, subject core.Subject, object core.Role, constraints []core.Constraint, direction graph.Direction) (*core.Proof, error) {
	env, err := c.call(ctx, wire.TQueryDirect, wire.QueryReq{
		Subject:     subject,
		Object:      object,
		Constraints: constraints,
		Direction:   direction,
		TraceID:     tc.TraceID,
		SpanID:      tc.SpanID,
	})
	if err != nil {
		return nil, err
	}
	var resp wire.ProofResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return nil, err
	}
	return resp.Proof, nil
}

// QuerySubject asks for all sub-proofs subject ⇒ *.
func (c *Client) QuerySubject(ctx context.Context, subject core.Subject, constraints []core.Constraint) ([]*core.Proof, error) {
	return c.QuerySubjectTraced(ctx, obs.TraceContext{}, subject, constraints)
}

// QuerySubjectTraced is QuerySubject carrying the caller's trace context.
func (c *Client) QuerySubjectTraced(ctx context.Context, tc obs.TraceContext, subject core.Subject, constraints []core.Constraint) ([]*core.Proof, error) {
	env, err := c.call(ctx, wire.TQuerySubject, wire.QueryReq{Subject: subject, Constraints: constraints, TraceID: tc.TraceID, SpanID: tc.SpanID})
	if err != nil {
		return nil, err
	}
	var resp wire.ProofsResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return nil, err
	}
	return resp.Proofs, nil
}

// QueryObject asks for all sub-proofs * ⇒ object.
func (c *Client) QueryObject(ctx context.Context, object core.Role, constraints []core.Constraint) ([]*core.Proof, error) {
	return c.QueryObjectTraced(ctx, obs.TraceContext{}, object, constraints)
}

// QueryObjectTraced is QueryObject carrying the caller's trace context.
func (c *Client) QueryObjectTraced(ctx context.Context, tc obs.TraceContext, object core.Role, constraints []core.Constraint) ([]*core.Proof, error) {
	env, err := c.call(ctx, wire.TQueryObject, wire.QueryReq{Object: object, Constraints: constraints, TraceID: tc.TraceID, SpanID: tc.SpanID})
	if err != nil {
		return nil, err
	}
	var resp wire.ProofsResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return nil, err
	}
	return resp.Proofs, nil
}

// Stats fetches the remote wallet's state summary and metrics snapshot —
// what `drbac stats` renders.
func (c *Client) Stats(ctx context.Context) (wire.StatsResp, error) {
	env, err := c.call(ctx, wire.TStats, struct{}{})
	if err != nil {
		return wire.StatsResp{}, err
	}
	var resp wire.StatsResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.StatsResp{}, err
	}
	return resp, nil
}

// Trace fetches the remote wallet's retained spans for one trace ID —
// what `drbac trace` merges across wallets into a waterfall.
func (c *Client) Trace(ctx context.Context, id string) (wire.TraceResp, error) {
	env, err := c.call(ctx, wire.TTrace, wire.TraceReq{TraceID: id})
	if err != nil {
		return wire.TraceResp{}, err
	}
	var resp wire.TraceResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.TraceResp{}, err
	}
	return resp, nil
}

// Subscribe registers for push notifications about one delegation (§4.2.2)
// and returns a cancel function that also unsubscribes remotely.
func (c *Client) Subscribe(ctx context.Context, id core.DelegationID, fn func(subs.Event)) (cancel func(), err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	n := c.nextSub
	c.nextSub++
	m, ok := c.notify[id]
	if !ok {
		m = make(map[int]func(subs.Event))
		c.notify[id] = m
	}
	first := len(m) == 0
	m[n] = fn
	c.mu.Unlock()

	if first {
		if _, err := c.call(ctx, wire.TSubscribe, wire.SubscribeReq{Delegation: id}); err != nil {
			c.mu.Lock()
			delete(c.notify[id], n)
			if len(c.notify[id]) == 0 {
				delete(c.notify, id)
			}
			c.mu.Unlock()
			return nil, err
		}
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			last := false
			if m, ok := c.notify[id]; ok {
				delete(m, n)
				if len(m) == 0 {
					delete(c.notify, id)
					last = true
				}
			}
			closed := c.closed
			c.mu.Unlock()
			if last && !closed {
				// The subscription's context may be long gone; the
				// unsubscribe is best-effort cleanup on its own clock.
				_, _ = c.call(context.Background(), wire.TUnsubscribe, wire.SubscribeReq{Delegation: id})
			}
		})
	}, nil
}

// Has reports whether the remote wallet stores the delegation — the
// registry-audit primitive (§6).
func (c *Client) Has(ctx context.Context, id core.DelegationID) (bool, error) {
	env, err := c.call(ctx, wire.THas, wire.HasReq{Delegation: id})
	if err != nil {
		return false, err
	}
	var resp wire.HasResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return false, err
	}
	return resp.Present, nil
}

// Revoke withdraws a delegation at the remote wallet; the server authorizes
// against this client's authenticated identity.
func (c *Client) Revoke(ctx context.Context, id core.DelegationID) error {
	_, err := c.call(ctx, wire.TRevoke, wire.RevokeReq{Delegation: id})
	return err
}

// ProveRole asks the remote wallet to prove its operating identity holds
// role, and validates both the proof and that its subject matches the
// transport-authenticated peer — the §4.2.1 home-wallet authorization check.
func (c *Client) ProveRole(ctx context.Context, role core.Role, at time.Time) (*core.Proof, error) {
	env, err := c.call(ctx, wire.TProveRole, wire.ProveRoleReq{Role: role})
	if err != nil {
		return nil, err
	}
	var resp wire.ProofResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return nil, err
	}
	p := resp.Proof
	if p == nil {
		return nil, fmt.Errorf("remote prove-role: empty proof")
	}
	if !p.Subject.IsEntity() || p.Subject.Entity != c.Peer().ID() {
		return nil, fmt.Errorf("remote prove-role: proof subject %s is not the authenticated peer %s",
			p.Subject, c.Peer())
	}
	if p.Object != role {
		return nil, fmt.Errorf("remote prove-role: proof object %s is not %s", p.Object, role)
	}
	if err := p.Validate(core.ValidateOptions{At: at}); err != nil {
		return nil, fmt.Errorf("remote prove-role: %w", err)
	}
	return p, nil
}

// Sync fetches the remote wallet's replicable state — every bundle and
// revocation — consistent at the returned Seq (§9). Followers bootstrap
// from it and resync from it after a stream gap.
func (c *Client) Sync(ctx context.Context) (wire.SyncResp, error) {
	env, err := c.call(ctx, wire.TSync, struct{}{})
	if err != nil {
		return wire.SyncResp{}, err
	}
	var resp wire.SyncResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.SyncResp{}, err
	}
	return resp, nil
}

// SyncSegments fetches the remote wallet's durable record log as raw
// segments, shipping only records with seq greater than afterSeq (0 ships
// the full log). Only log-store-backed wallets answer it; other stores
// return an error and the caller falls back to Sync.
func (c *Client) SyncSegments(ctx context.Context, afterSeq uint64) (wire.SyncSegmentsResp, error) {
	env, err := c.call(ctx, wire.TSyncSegments, wire.SyncSegmentsReq{AfterSeq: afterSeq})
	if err != nil {
		return wire.SyncSegmentsResp{}, err
	}
	var resp wire.SyncSegmentsResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.SyncSegmentsResp{}, err
	}
	return resp, nil
}

// SubscribeAll registers fn to receive every status push from the remote
// wallet's changelog stream, raw (seq and bundle included), and returns the
// server's seq at stream registration: every mutation with a greater seq is
// guaranteed to be delivered to fn. A client carries at most one stream;
// re-subscribing replaces the handler. fn runs on the client's push
// dispatcher goroutine, before any per-delegation handlers for the same
// push, and may block (blocking backpressures the stream, and a stream
// backed up past the server's buffer drops pushes, forcing a resync).
func (c *Client) SubscribeAll(ctx context.Context, fn func(wire.NotifyPush)) (seq uint64, cancel func(), err error) {
	if fn == nil {
		return 0, nil, errors.New("remote subscribe-all: nil handler")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, ErrClientClosed
	}
	// Install before the request: pushes can race ahead of the response.
	c.stream = fn
	c.mu.Unlock()

	env, err := c.call(ctx, wire.TSubscribeAll, struct{}{})
	if err != nil {
		c.mu.Lock()
		c.stream = nil
		c.mu.Unlock()
		return 0, nil, err
	}
	var resp wire.SubscribeAllResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		c.mu.Lock()
		c.stream = nil
		c.mu.Unlock()
		return 0, nil, err
	}
	var once sync.Once
	return resp.Seq, func() {
		once.Do(func() {
			c.mu.Lock()
			c.stream = nil
			c.mu.Unlock()
		})
	}, nil
}

// DHTFindNode asks the peer for its closest known contacts to target.
func (c *Client) DHTFindNode(ctx context.Context, req wire.DHTFindReq) (wire.DHTFindResp, error) {
	env, err := c.call(ctx, wire.TDHTFindNode, req)
	if err != nil {
		return wire.DHTFindResp{}, err
	}
	var resp wire.DHTFindResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.DHTFindResp{}, err
	}
	return resp, nil
}

// DHTFindValue asks the peer for the provider record under req.Target,
// falling back to its closest contacts on a miss. The caller must verify
// any returned record (dht.Record verification) — the transport
// authenticates the serving node, not the record's publisher.
func (c *Client) DHTFindValue(ctx context.Context, req wire.DHTFindReq) (wire.DHTFindResp, error) {
	env, err := c.call(ctx, wire.TDHTFindValue, req)
	if err != nil {
		return wire.DHTFindResp{}, err
	}
	var resp wire.DHTFindResp
	if err := wire.DecodeBody(env, &resp); err != nil {
		return wire.DHTFindResp{}, err
	}
	return resp, nil
}

// DHTStore offers a signed provider record to the peer for storage. The
// peer verifies it against the embedded entity key; refusals come back as
// errors.
func (c *Client) DHTStore(ctx context.Context, req wire.DHTStoreReq) error {
	_, err := c.call(ctx, wire.TDHTStore, req)
	return err
}

// GossipPing sends a SWIM probe (direct when body.Target is empty) and
// returns the peer's ack with its piggybacked membership updates.
func (c *Client) GossipPing(ctx context.Context, body wire.GossipPingBody) (wire.GossipAck, error) {
	t := wire.TGossipPing
	if body.Target != "" {
		t = wire.TGossipPingReq
	}
	env, err := c.call(ctx, t, body)
	if err != nil {
		return wire.GossipAck{}, err
	}
	var ack wire.GossipAck
	if err := wire.DecodeBody(env, &ack); err != nil {
		return wire.GossipAck{}, err
	}
	return ack, nil
}

// SplitAddrs parses a comma-separated address list ("primary,replica1,…")
// into its elements, trimming whitespace and dropping empties. The inverse
// convention lets one discovery-tag home, proxy upstream, or CLI -addr name
// a wallet and its replicas together.
func SplitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// JoinAddrs renders an address list back into the comma-separated form
// SplitAddrs parses — the shape a discovery-tag home expects.
func JoinAddrs(addrs []string) string {
	return strings.Join(addrs, ",")
}

// DialAny connects to the first reachable address in addrs, in order, and
// returns the client together with the address that answered. Read-path
// callers list the primary first and its replicas after it, so reads fail
// over when the primary is down; all addresses failing returns the last
// error.
func DialAny(ctx context.Context, d transport.Dialer, addrs []string) (*Client, string, error) {
	if len(addrs) == 0 {
		return nil, "", errors.New("remote: dial: no addresses")
	}
	var lastErr error
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		c, err := Dial(ctx, d, addr)
		if err == nil {
			return c, addr, nil
		}
		lastErr = err
	}
	return nil, "", fmt.Errorf("remote: no reachable address among %v: %w", addrs, lastErr)
}
