package remote

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
	net *transport.MemNetwork
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) role(text string) core.Role {
	e.t.Helper()
	r, err := core.ParseRole(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return r
}

func (e *env) subject(text string) core.Subject {
	e.t.Helper()
	s, err := core.ParseSubject(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return s
}

// serve starts a wallet server owned by ownerName at addr and returns it
// with a cleanup.
func (e *env) serve(addr, ownerName string) (*Server, *wallet.Wallet) {
	e.t.Helper()
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir})
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		e.t.Fatal(err)
	}
	s := Serve(w, ln)
	e.t.Cleanup(s.Close)
	return s, w
}

func (e *env) dial(addr, clientName string) *Client {
	e.t.Helper()
	c, err := Dial(context.Background(), e.net.Dialer(e.id(clientName)), addr)
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(c.Close)
	return c
}

func TestPingPong(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Peer().ID() != e.id("BigISP").ID() {
		t.Fatal("peer identity mismatch")
	}
}

func TestRemotePublishAndQuery(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")

	d1 := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	d2 := e.deleg("[BigISP.memberServices -> BigISP.member'] BigISP")
	d3 := e.deleg("[Maria -> BigISP.member] Mark")
	sup, err := core.NewProof(core.ProofStep{Delegation: d1}, core.ProofStep{Delegation: d2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), d1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), d2, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), d3, []*core.Proof{sup}, 0); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("server wallet has %d delegations", w.Len())
	}

	p, err := c.QueryDirect(context.Background(), e.subject("Maria"), e.role("BigISP.member"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatalf("remote proof invalid locally: %v", err)
	}

	proofs, err := c.QuerySubject(context.Background(), e.subject("Maria"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 1 {
		t.Fatalf("subject query = %d proofs", len(proofs))
	}
	objProofs, err := c.QueryObject(context.Background(), e.role("BigISP.member"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(objProofs) == 0 {
		t.Fatal("object query empty")
	}
}

func TestRemoteQueryNoProofMapsToErrNoProof(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")
	_, err := c.QueryDirect(context.Background(), e.subject("Maria"), e.role("BigISP.member"), nil, 0)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestRemoteRevokeAuthorization(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Mallory")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}

	// Mallory (not the issuer) cannot revoke over the wire.
	mallory := e.dial("wallet.bigisp", "Mallory")
	if err := mallory.Revoke(context.Background(), d.ID()); err == nil {
		t.Fatal("non-issuer revocation accepted remotely")
	}
	// The issuer can.
	bigisp := e.dial("wallet.bigisp", "BigISP")
	if err := bigisp.Revoke(context.Background(), d.ID()); err != nil {
		t.Fatal(err)
	}
	if !w.IsRevoked(d.ID()) {
		t.Fatal("revocation not applied")
	}
}

func TestRemoteSubscriptionPush(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}

	c := e.dial("wallet.bigisp", "Maria")
	events := make(chan subs.Event, 4)
	cancel, err := c.Subscribe(context.Background(), d.ID(), func(ev subs.Event) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != subs.Revoked || ev.Delegation != d.ID() {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revocation push not delivered")
	}
}

func TestRemoteUnsubscribeStopsPush(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	c := e.dial("wallet.bigisp", "Maria")
	var mu sync.Mutex
	count := 0
	cancel, err := c.Subscribe(context.Background(), d.ID(), func(subs.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// After cancel returns, the server-side subscription is gone.
	if w.Subscribers(d.ID()) != 0 {
		t.Fatal("server still has subscribers after unsubscribe")
	}
	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatalf("received %d events after unsubscribe", count)
	}
}

func TestRemotePublishWithTTLCreatesCacheEntry(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := c.Publish(context.Background(), d, nil, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if w.CachedCount() != 1 {
		t.Fatalf("CachedCount = %d", w.CachedCount())
	}
}

func TestProveRole(t *testing.T) {
	e := newEnv(t, "AirNet", "WalletOp", "Maria")
	// WalletOp operates AirNet's wallet and holds AirNet.wallet.
	_, w := e.serve("wallet.airnet", "WalletOp")
	if err := w.Publish(e.deleg("[WalletOp -> AirNet.wallet] AirNet")); err != nil {
		t.Fatal(err)
	}
	c := e.dial("wallet.airnet", "Maria")
	p, err := c.ProveRole(context.Background(), e.role("AirNet.wallet"), e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Subject.IsEntity() || p.Subject.Entity != e.id("WalletOp").ID() {
		t.Fatalf("proof subject = %v", p.Subject)
	}
}

func TestProveRoleFailsWithoutAuthority(t *testing.T) {
	e := newEnv(t, "AirNet", "WalletOp", "Maria")
	e.serve("wallet.airnet", "WalletOp") // no AirNet.wallet grant published
	c := e.dial("wallet.airnet", "Maria")
	if _, err := c.ProveRole(context.Background(), e.role("AirNet.wallet"), e.clk.Now()); err == nil {
		t.Fatal("prove-role should fail without authority")
	}
}

func TestConcurrentClients(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(context.Background(), e.net.Dialer(e.id("Maria")), "wallet.bigisp")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, err := c.QueryDirect(context.Background(), e.subject("Maria"), e.role("BigISP.member"), nil, 0); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")
	c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after close = %v", err)
	}
	if _, err := c.Subscribe(context.Background(), "x", func(subs.Event) {}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Subscribe after close = %v", err)
	}
}

func TestServerCloseIsIdempotentAndDropsClients(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	s, _ := e.serve("wallet.bigisp", "BigISP")
	c := e.dial("wallet.bigisp", "Maria")
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping should fail after server close")
	}
}

func TestRemoteOverTCP(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := wallet.New(wallet.Config{Owner: e.id("BigISP"), Clock: e.clk, Directory: e.dir})
	ln, err := transport.ListenTCP("127.0.0.1:0", e.id("BigISP"))
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(w, ln)
	defer s.Close()

	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(context.Background(), &transport.TCPDialer{Identity: e.id("Maria")}, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.QueryDirect(context.Background(), e.subject("Maria"), e.role("BigISP.member"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatal(err)
	}
}

func TestServerDropsProtocolViolators(t *testing.T) {
	e := newEnv(t, "BigISP", "Mallory")
	e.serve("wallet.bigisp", "BigISP")
	// Speak raw transport, not the wallet protocol.
	conn, err := e.net.Dialer(e.id("Mallory")).Dial(context.Background(), "wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("garbage that is not json")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection rather than wedge.
	done := make(chan error, 1)
	go func() {
		_, err := conn.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server answered garbage instead of dropping the connection")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server kept a protocol violator connected")
	}
}

func TestWalletPrinterUsesDirectory(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	w := wallet.New(wallet.Config{Owner: e.id("BigISP"), Clock: e.clk, Directory: e.dir})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	out := w.Printer().Delegation(d)
	if out != "[Maria -> BigISP.member] BigISP" {
		t.Fatalf("rendered %q", out)
	}
}

func TestHas(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	c := e.dial("wallet.bigisp", "Maria")
	present, err := c.Has(context.Background(), d.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !present {
		t.Fatal("stored delegation reported absent")
	}
	absent, err := c.Has(context.Background(), "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if absent {
		t.Fatal("unknown delegation reported present")
	}
}

// Subscription churn: concurrent subscribe/unsubscribe from many
// goroutines must neither race nor leave server-side residue.
func TestSubscriptionChurn(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	c := e.dial("wallet.bigisp", "Maria")

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				cancel, err := c.Subscribe(context.Background(), d.ID(), func(subs.Event) {})
				if err != nil {
					errs <- err
					return
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Quiesce: outstanding unsubscribe calls have completed (Subscribe and
	// the returned cancel both round-trip), so the server must be clean.
	if n := w.Subscribers(d.ID()); n != 0 {
		t.Fatalf("server retains %d subscribers after churn", n)
	}
}

func TestSplitAddrsEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{",,,", nil},
		{"a.home", []string{"a.home"}},
		{"a.home,b.home", []string{"a.home", "b.home"}},
		{" a.home , b.home ", []string{"a.home", "b.home"}},
		{",a.home,,b.home,", []string{"a.home", "b.home"}},
		// Duplicates are preserved: dedup is the caller's policy, not the
		// parser's (a replica group listing an address twice is its own bug).
		{"a.home,a.home", []string{"a.home", "a.home"}},
	}
	for _, tc := range cases {
		got := SplitAddrs(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("SplitAddrs(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SplitAddrs(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
