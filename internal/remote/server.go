// Package remote serves a wallet over the authenticated transport and
// provides the client stubs used by distributed discovery (§4.2): remote
// publication, the three query kinds, delegation subscriptions with push
// notifications, revocation, home-wallet authorization proofs, and metrics
// snapshots.
package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"drbac/internal/bufpool"
	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

// serverMetrics holds the server's pre-resolved instruments; the zero
// value is inert (nil instruments no-op).
type serverMetrics struct {
	requests    *obs.Counter
	errors      *obs.Counter
	noProof     *obs.Counter
	pushes      *obs.Counter
	pushErrors  *obs.Counter
	connections *obs.Counter
	binaryConns *obs.Counter
	activeConns *obs.Gauge
	latency     *obs.Histogram
}

func newServerMetrics(o *obs.Obs) serverMetrics {
	if o.Registry() == nil {
		return serverMetrics{}
	}
	return serverMetrics{
		requests:    o.Counter("drbac_server_requests_total"),
		errors:      o.Counter("drbac_server_errors_total"),
		noProof:     o.Counter("drbac_server_noproof_total"),
		pushes:      o.Counter("drbac_server_pushes_total"),
		pushErrors:  o.Counter("drbac_server_push_errors_total"),
		connections: o.Counter("drbac_server_connections_total"),
		binaryConns: o.Counter("drbac_server_binary_connections_total"),
		activeConns: o.Registry().Gauge("drbac_server_active_connections"),
		latency:     o.Histogram("drbac_server_request_seconds"),
	}
}

// ClusterGuard lets a sharded deployment enforce shard ownership and
// epoch freshness at the serving edge. remote stays ignorant of ring
// mechanics: the guard (implemented by internal/cluster) decides, and the
// server only relays redirects. A nil guard serves unclustered.
type ClusterGuard interface {
	// Hello is the advertisement pushed on every accepted connection:
	// shard ID and current epoch (no map body).
	Hello() wire.ShardMapResp
	// MapResp answers a TShardMap request with the full serialized map.
	MapResp() (wire.ShardMapResp, error)
	// CheckPublish authorizes a durable publish of a delegation whose
	// subject node is subject, stamped with the caller's epoch (0 =
	// unstamped). A non-nil redirect refuses the request.
	CheckPublish(reqEpoch uint64, subject core.Subject) *wire.Redirect
	// CheckEpoch authorizes an epoch-stamped mutation that carries no
	// subject key (revoke). A non-nil redirect refuses the request.
	CheckEpoch(reqEpoch uint64) *wire.Redirect
	// Stats reports the cluster section of a stats response.
	Stats() *wire.ClusterStats
}

// DHTHandler serves the DHT side of the protocol (find-node, find-value,
// store). Like ClusterGuard it keeps remote ignorant of routing mechanics:
// internal/dht implements it, remote only relays. The caller's identity is
// the transport-authenticated peer entity — handlers derive the requester's
// contact ID from it, never from bytes claimed in the request body.
type DHTHandler interface {
	// HandleFindNode answers with the closest known contacts to the target.
	HandleFindNode(from core.Entity, req wire.DHTFindReq) (wire.DHTFindResp, error)
	// HandleFindValue answers with the held record for the target key, or
	// the closest contacts when the node does not hold it.
	HandleFindValue(from core.Entity, req wire.DHTFindReq) (wire.DHTFindResp, error)
	// HandleStore verifies and stores an offered provider record. An error
	// refuses the record (and is reported to the caller).
	HandleStore(from core.Entity, req wire.DHTStoreReq) error
}

// GossipHandler serves SWIM membership probes; internal/gossip implements
// it. HandlePingReq relays a probe to a third member and may block up to
// its probe timeout, so the server runs it like any other request — on the
// per-request goroutine, under the connection's inflight bound.
type GossipHandler interface {
	HandlePing(ctx context.Context, from core.Entity, req wire.GossipPingBody) (wire.GossipAck, error)
	HandlePingReq(ctx context.Context, from core.Entity, req wire.GossipPingBody) (wire.GossipAck, error)
}

// RedirectError is a shard-routing refusal: the request was stamped with
// a stale epoch or sent to a shard that does not own its key. It crosses
// the wire as ErrorResp.Redirect; clients adopt the carried map and retry
// against the owning shard.
type RedirectError struct {
	Msg      string
	Redirect wire.Redirect
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("%s (owner shard %d, epoch %d)", e.Msg, e.Redirect.Shard, e.Redirect.Epoch)
}

// Server exposes one wallet to the network.
type Server struct {
	w        wallet.Service
	ln       transport.Listener
	obs      *obs.Obs
	m        serverMetrics
	readOnly bool
	role     string
	guard    ClusterGuard
	dht      DHTHandler
	gossip   GossipHandler
	dhtStats func() *wire.DHTStats
	// directFallback, when set, is consulted after a direct query misses
	// the wallet — the hook hierarchical caching proxies use to pull
	// credentials through from an upstream wallet (§6).
	directFallback func(context.Context, wallet.Query) (*core.Proof, error)

	// baseCtx parents every request handled by this server; Close cancels
	// it so in-flight fallback pulls and queries unwind promptly.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu     sync.Mutex
	conns  map[transport.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Options customizes a served wallet.
type Options struct {
	// DirectFallback runs when a direct query finds no proof locally; a
	// non-nil proof it returns is served to the client. Used by
	// pull-through caches. The context is canceled when the server closes.
	DirectFallback func(context.Context, wallet.Query) (*core.Proof, error)
	// Obs, if non-nil, receives the server's structured request/audit log
	// (who published/queried/revoked what, proof found or not, latency)
	// and request/push/connection metrics. Share the wallet's Obs so one
	// registry exports the whole daemon.
	Obs *obs.Obs
	// ReadOnly rejects state-changing requests (publish, revoke): a
	// follower replica serves queries, subscriptions, and sync, while
	// mutations must go to the primary (§9).
	ReadOnly bool
	// Role labels this server's replication role in stats responses
	// ("primary" or "replica"); empty omits the field.
	Role string
	// Cluster, if non-nil, makes this server a shard-cluster member: it
	// advertises the shard map epoch on connect, answers shardmap
	// requests, and refuses mis-routed or stale-epoch mutations with
	// redirects the guard decides.
	Cluster ClusterGuard
	// DHT, if non-nil, serves dht-find-node/find-value/store requests.
	// Daemons without `-dht` answer those with an error.
	DHT DHTHandler
	// Gossip, if non-nil, serves gossip-ping/ping-req probes.
	Gossip GossipHandler
	// DHTStats, if non-nil, supplies the dht section of stats responses
	// (the daemon composes DHT table counts with gossip member counts).
	DHTStats func() *wire.DHTStats
}

// ErrReadOnly reports a mutation request sent to a read-only replica.
var ErrReadOnly = errors.New("wallet is a read-only replica; send mutations to the primary")

// Serve starts accepting connections for w on ln. Close shuts it down.
// The served wallet's own Obs (if any) also observes the server, so a
// wallet-plus-server daemon needs a single bundle. w is usually a
// *wallet.Wallet; a cluster gateway passes its scatter-gather service.
func Serve(w wallet.Service, ln transport.Listener) *Server {
	return ServeOptions(w, ln, Options{Obs: w.Obs()})
}

// ServeOptions is Serve with customization.
func ServeOptions(w wallet.Service, ln transport.Listener, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		w:              w,
		ln:             ln,
		obs:            opts.Obs,
		m:              newServerMetrics(opts.Obs),
		readOnly:       opts.ReadOnly,
		role:           opts.Role,
		guard:          opts.Cluster,
		dht:            opts.DHT,
		gossip:         opts.Gossip,
		dhtStats:       opts.DHTStats,
		directFallback: opts.DirectFallback,
		baseCtx:        ctx,
		cancelAll:      cancel,
		conns:          make(map[transport.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the served address.
func (s *Server) Addr() string { return s.ln.Addr() }

// Wallet returns the served wallet service.
func (s *Server) Wallet() wallet.Service { return s.w }

// Close stops the listener, tears down every connection, and waits for the
// handler goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cancelAll()
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if err := s.ln.Close(); err != nil {
		s.obs.Log().Debug("server listener close", "error", err)
	}
	for _, c := range conns {
		if err := c.Close(); err != nil {
			s.obs.Log().Debug("server connection close", "error", err)
		}
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.obs.Log().Warn("server accept failed", "error", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.m.connections.Inc()
		if conn.Codec() == transport.CodecBinary {
			s.m.binaryConns.Inc()
		}
		s.m.activeConns.Add(1)
		s.obs.Log().Debug("connection open",
			"peer", conn.Peer().ID().Short(), "codec", conn.Codec())
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// connState tracks per-connection subscription cancels and serializes
// writes (responses can interleave with notification pushes).
type connState struct {
	conn transport.Conn
	// codec is the wire codec negotiated during the transport handshake;
	// every frame in either direction on this connection uses it.
	codec wire.Codec

	writeMu sync.Mutex
	subMu   sync.Mutex
	cancels map[core.DelegationID]func()
	// streamStop tears down this connection's changelog stream
	// (subscribe-all), when one is active. Guarded by subMu; idempotent.
	streamStop func()
}

func (cs *connState) send(t wire.MsgType, id uint64, body any) error {
	frame, err := cs.codec.Encode(t, id, body)
	if err != nil {
		return err
	}
	cs.writeMu.Lock()
	err = cs.conn.Send(frame)
	cs.writeMu.Unlock()
	// Send fully consumes the frame before returning, so the encode buffer
	// can go straight back to the pool either way.
	bufpool.Put(frame)
	return err
}

func (cs *connState) sendErr(id uint64, err error) {
	resp := wire.ErrorResp{Message: err.Error(), NoProof: errors.Is(err, core.ErrNoProof)}
	var rd *RedirectError
	if errors.As(err, &rd) {
		resp.Message = rd.Msg
		resp.Redirect = &rd.Redirect
	}
	_ = cs.send(wire.TError, id, resp)
}

// maxInflightPerConn bounds concurrently served requests per connection;
// beyond it the read loop blocks, pushing back on the peer instead of
// spawning unbounded goroutines.
const maxInflightPerConn = 64

func (s *Server) handleConn(conn transport.Conn) {
	defer s.wg.Done()
	peer := conn.Peer().ID().Short()
	cs := &connState{
		conn:    conn,
		codec:   wire.CodecFor(conn.Codec()),
		cancels: make(map[core.DelegationID]func()),
	}
	var inflight sync.WaitGroup
	defer func() {
		inflight.Wait()
		cs.subMu.Lock()
		for _, cancel := range cs.cancels {
			cancel()
		}
		cs.cancels = nil
		stop := cs.streamStop
		cs.streamStop = nil
		cs.subMu.Unlock()
		if stop != nil {
			stop()
		}
		if err := conn.Close(); err != nil {
			s.obs.Log().Debug("connection close", "peer", peer, "error", err)
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.m.activeConns.Add(-1)
		s.obs.Log().Debug("connection closed", "peer", peer)
	}()

	// A cluster member advertises its shard map epoch before serving
	// anything, so routing clients learn staleness at connect time
	// instead of on their first refused mutation.
	if s.guard != nil {
		if err := cs.send(wire.TClusterHello, 0, s.guard.Hello()); err != nil {
			s.obs.Log().Debug("cluster hello failed", "peer", peer, "error", err)
		}
	}

	// Requests are served concurrently: slow proof searches must not stall
	// the pipeline behind them. Clients correlate responses by envelope ID,
	// so completion order is free to differ from arrival order.
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		env, err := cs.codec.Decode(frame)
		if err != nil {
			// Protocol violation: drop the connection.
			s.obs.Log().Warn("protocol violation", "peer", peer, "error", err)
			return
		}
		sem <- struct{}{}
		inflight.Add(1)
		go func(env wire.Envelope, frame []byte) {
			defer func() {
				<-sem
				inflight.Done()
			}()
			s.dispatch(cs, env)
			// dispatch has decoded the body and sent the response; nothing
			// retains the request frame (DecodeBody copies every field it
			// keeps), so the receive buffer can be recycled.
			bufpool.Put(frame)
		}(env, frame)
	}
}

// dispatch serves one request, then meters it and emits the audit record:
// request type, authenticated peer, per-type detail (delegation, query
// subject/object, proof found), trace ID when the caller sent one, outcome,
// and latency.
func (s *Server) dispatch(cs *connState, env wire.Envelope) {
	start := time.Now()
	attrs, err := s.handle(cs, env)
	if err != nil {
		cs.sendErr(env.ID, err)
	}
	s.m.requests.Inc()
	s.m.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		if errors.Is(err, core.ErrNoProof) {
			s.m.noProof.Inc()
		} else {
			s.m.errors.Inc()
		}
	}
	if s.obs != nil {
		rec := make([]any, 0, len(attrs)+8)
		rec = append(rec, "type", string(env.Type), "peer", cs.conn.Peer().ID().Short())
		rec = append(rec, attrs...)
		rec = append(rec, "duration_ms", float64(time.Since(start).Microseconds())/1000)
		if err != nil {
			rec = append(rec, "error", err.Error())
		}
		s.obs.Log().Info("request", rec...)
	}
}

// serveSpan opens the server-side span for a traced query: a local root
// continuing the caller's trace, parented under the caller's span ID so a
// merged cross-wallet trace nests this hop below the query that caused it.
// The returned context carries the span down into the wallet (and the
// proxy fallback). Untraced requests get a nil span and the base context.
func (s *Server) serveSpan(req wire.QueryReq, name string, args ...any) (context.Context, *obs.Span) {
	if s.obs == nil || req.TraceID == "" {
		return s.baseCtx, nil
	}
	sp := s.obs.StartServerSpan(req.TraceID, req.SpanID, name, args...)
	return obs.ContextWithSpan(s.baseCtx, sp), sp
}

// handle serves one request, sending the success response itself and
// returning audit-log attributes; a returned error is sent by dispatch.
func (s *Server) handle(cs *connState, env wire.Envelope) ([]any, error) {
	switch env.Type {
	case wire.TPing:
		return nil, cs.send(wire.TPong, env.ID, nil)

	case wire.TPublish:
		var req wire.PublishReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		var attrs []any
		if req.Delegation != nil {
			attrs = []any{"delegation", req.Delegation.ID().Short(), "ttl_s", req.TTLSeconds}
		}
		if s.readOnly {
			return attrs, fmt.Errorf("publish: %w", ErrReadOnly)
		}
		// Shard guard: durable publishes must land on the owning shard
		// under a fresh epoch. TTL-cached copies are exempt — they are a
		// local caching concern (§4.2.1), not partitioned state.
		if s.guard != nil && req.TTLSeconds == 0 && req.Delegation != nil {
			if rd := s.guard.CheckPublish(req.ShardEpoch, req.Delegation.Subject); rd != nil {
				return attrs, &RedirectError{Msg: "publish refused: wrong shard or stale epoch", Redirect: *rd}
			}
		}
		var err error
		if req.TTLSeconds > 0 {
			err = s.w.InsertCached(req.Delegation, req.Support, time.Duration(req.TTLSeconds)*time.Second)
		} else {
			err = s.w.Publish(req.Delegation, req.Support...)
		}
		if err != nil {
			return attrs, err
		}
		return attrs, cs.send(wire.TOK, env.ID, nil)

	case wire.TQueryDirect:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		ctx, sp := s.serveSpan(req, "serve:query-direct",
			"subject", req.Subject.String(), "object", req.Object.String())
		q := wallet.Query{
			Ctx:         ctx,
			Subject:     req.Subject,
			Object:      req.Object,
			Constraints: req.Constraints,
			Direction:   req.Direction,
			TraceID:     req.TraceID,
		}
		attrs := []any{"trace", req.TraceID, "subject", req.Subject.String(), "object", req.Object.String()}
		p, err := s.w.QueryDirect(q)
		if err != nil && errors.Is(err, core.ErrNoProof) && s.directFallback != nil {
			p, err = s.directFallback(ctx, q)
		}
		if err != nil && !errors.Is(err, core.ErrNoProof) {
			sp.Fail(err)
		}
		sp.End("found", err == nil)
		if err != nil {
			return append(attrs, "found", false), err
		}
		return append(attrs, "found", true), cs.send(wire.TProof, env.ID, wire.ProofResp{Proof: p})

	case wire.TQuerySubject:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		_, sp := s.serveSpan(req, "serve:query-subject", "subject", req.Subject.String())
		proofs := s.w.QuerySubject(req.Subject, req.Constraints)
		sp.End("results", len(proofs))
		attrs := []any{"trace", req.TraceID, "subject", req.Subject.String(), "results", len(proofs)}
		return attrs, cs.send(wire.TProofs, env.ID, wire.ProofsResp{Proofs: proofs})

	case wire.TQueryObject:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		_, sp := s.serveSpan(req, "serve:query-object", "object", req.Object.String())
		proofs := s.w.QueryObject(req.Object, req.Constraints)
		sp.End("results", len(proofs))
		attrs := []any{"trace", req.TraceID, "object", req.Object.String(), "results", len(proofs)}
		return attrs, cs.send(wire.TProofs, env.ID, wire.ProofsResp{Proofs: proofs})

	case wire.TTrace:
		var req wire.TraceReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		spans := s.obs.TraceCollector().Spans(req.TraceID)
		attrs := []any{"trace", req.TraceID, "spans", len(spans)}
		return attrs, cs.send(wire.TOK, env.ID, wire.TraceResp{Found: len(spans) > 0, Spans: spans})

	case wire.TSubscribe:
		var req wire.SubscribeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		s.subscribe(cs, req.Delegation)
		return []any{"delegation", req.Delegation.Short()}, cs.send(wire.TOK, env.ID, nil)

	case wire.TUnsubscribe:
		var req wire.SubscribeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		cs.subMu.Lock()
		if cancel, ok := cs.cancels[req.Delegation]; ok {
			cancel()
			delete(cs.cancels, req.Delegation)
		}
		cs.subMu.Unlock()
		return []any{"delegation", req.Delegation.Short()}, cs.send(wire.TOK, env.ID, nil)

	case wire.TRevoke:
		var req wire.RevokeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		attrs := []any{"delegation", req.Delegation.Short()}
		if s.readOnly {
			return attrs, fmt.Errorf("revoke: %w", ErrReadOnly)
		}
		if s.guard != nil {
			if rd := s.guard.CheckEpoch(req.ShardEpoch); rd != nil {
				return attrs, &RedirectError{Msg: "revoke refused: stale shard map epoch", Redirect: *rd}
			}
		}
		// Authorization: the authenticated peer must be the issuer.
		if err := s.w.Revoke(req.Delegation, cs.conn.Peer().ID()); err != nil {
			return attrs, err
		}
		return attrs, cs.send(wire.TOK, env.ID, nil)

	case wire.THas:
		var req wire.HasReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		present := s.w.Contains(req.Delegation)
		attrs := []any{"delegation", req.Delegation.Short(), "present", present}
		return attrs, cs.send(wire.TOK, env.ID, wire.HasResp{Present: present})

	case wire.TProveRole:
		var req wire.ProveRoleReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		attrs := []any{"role", req.Role.String()}
		owner := s.w.Owner()
		if owner == nil {
			return attrs, fmt.Errorf("wallet has no operating identity")
		}
		p, err := s.w.QueryDirect(wallet.Query{
			Subject: core.SubjectEntity(owner.ID()),
			Object:  req.Role,
		})
		if err != nil {
			return attrs, err
		}
		return attrs, cs.send(wire.TProof, env.ID, wire.ProofResp{Proof: p})

	case wire.TStats:
		resp := s.statsResp()
		resp.Wire.ConnCodec = cs.codec.Name()
		return nil, cs.send(wire.TOK, env.ID, resp)

	case wire.TShardMap:
		if s.guard == nil {
			return nil, fmt.Errorf("wallet is not a shard cluster member")
		}
		resp, err := s.guard.MapResp()
		if err != nil {
			return nil, err
		}
		return []any{"epoch", resp.Epoch, "shard", resp.Shard}, cs.send(wire.TOK, env.ID, resp)

	case wire.TSync:
		rep, ok := s.w.(wallet.Replicable)
		if !ok {
			return nil, fmt.Errorf("wallet does not serve replication; sync its member shards instead")
		}
		snap := rep.Snapshot()
		resp := wire.SyncResp{Seq: snap.Seq, Revoked: snap.Revoked}
		resp.Bundles = make([]wire.SyncBundle, 0, len(snap.Bundles))
		for _, b := range snap.Bundles {
			resp.Bundles = append(resp.Bundles, wire.SyncBundle{Delegation: b.Delegation, Support: b.Support})
		}
		attrs := []any{"seq", snap.Seq, "bundles", len(resp.Bundles), "revoked", len(resp.Revoked)}
		return attrs, cs.send(wire.TOK, env.ID, resp)

	case wire.TSyncSegments:
		var req wire.SyncSegmentsReq
		if len(env.Body) > 0 {
			if err := wire.DecodeBody(env, &req); err != nil {
				return nil, err
			}
		}
		rep, ok := s.w.(wallet.Replicable)
		if !ok {
			return nil, fmt.Errorf("wallet does not serve replication; sync its member shards instead")
		}
		segStore, ok := rep.Store().(wallet.SegmentStore)
		if !ok {
			// Old-style stores cannot ship segments; the caller falls back
			// to the monolithic TSync snapshot.
			return nil, fmt.Errorf("wallet store does not ship segments")
		}
		// Read the wallet seq BEFORE snapshotting: records that land between
		// the two reads ship with seq > resp.Seq and are re-applied
		// idempotently from the stream, whereas the reverse order could
		// advertise a seq the shipment does not cover.
		seq0 := s.w.Seq()
		snap, err := segStore.SnapshotSegments(req.AfterSeq)
		if err != nil {
			return []any{"afterSeq", req.AfterSeq}, err
		}
		resp := wire.SyncSegmentsResp{Seq: seq0}
		var bytesShipped int
		for _, seg := range snap.Segments {
			bytesShipped += len(seg.Data)
			resp.Segments = append(resp.Segments, wire.Segment{Name: seg.Name, Sealed: seg.Sealed, Records: seg.Data})
		}
		attrs := []any{"afterSeq", req.AfterSeq, "seq", seq0, "segments", len(resp.Segments), "bytes", bytesShipped}
		return attrs, cs.send(wire.TOK, env.ID, resp)

	case wire.TDHTFindNode:
		if s.dht == nil {
			return nil, fmt.Errorf("wallet does not serve the DHT (start drbacd with -dht)")
		}
		var req wire.DHTFindReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		resp, err := s.dht.HandleFindNode(cs.conn.Peer(), req)
		if err != nil {
			return nil, err
		}
		return []any{"contacts", len(resp.Contacts)}, cs.send(wire.TOK, env.ID, resp)

	case wire.TDHTFindValue:
		if s.dht == nil {
			return nil, fmt.Errorf("wallet does not serve the DHT (start drbacd with -dht)")
		}
		var req wire.DHTFindReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		resp, err := s.dht.HandleFindValue(cs.conn.Peer(), req)
		if err != nil {
			return nil, err
		}
		return []any{"hit", resp.Record != nil, "contacts", len(resp.Contacts)},
			cs.send(wire.TOK, env.ID, resp)

	case wire.TDHTStore:
		if s.dht == nil {
			return nil, fmt.Errorf("wallet does not serve the DHT (start drbacd with -dht)")
		}
		var req wire.DHTStoreReq
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		if err := s.dht.HandleStore(cs.conn.Peer(), req); err != nil {
			return []any{"accepted", false}, err
		}
		return []any{"accepted", true}, cs.send(wire.TOK, env.ID, nil)

	case wire.TGossipPing:
		if s.gossip == nil {
			return nil, fmt.Errorf("wallet does not serve gossip membership")
		}
		var req wire.GossipPingBody
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		ack, err := s.gossip.HandlePing(s.baseCtx, cs.conn.Peer(), req)
		if err != nil {
			return nil, err
		}
		return nil, cs.send(wire.TOK, env.ID, ack)

	case wire.TGossipPingReq:
		if s.gossip == nil {
			return nil, fmt.Errorf("wallet does not serve gossip membership")
		}
		var req wire.GossipPingBody
		if err := wire.DecodeBody(env, &req); err != nil {
			return nil, err
		}
		ack, err := s.gossip.HandlePingReq(s.baseCtx, cs.conn.Peer(), req)
		if err != nil {
			return []any{"target", req.Target}, err
		}
		return []any{"target", req.Target}, cs.send(wire.TOK, env.ID, ack)

	case wire.TSubscribeAll:
		rep, ok := s.w.(wallet.Replicable)
		if !ok {
			return nil, fmt.Errorf("wallet does not serve replication; stream its member shards instead")
		}
		seq, err := s.subscribeAll(cs, rep)
		if err != nil {
			return nil, err
		}
		return []any{"seq", seq}, cs.send(wire.TOK, env.ID, wire.SubscribeAllResp{Seq: seq})

	default:
		return nil, fmt.Errorf("unknown request type %q", env.Type)
	}
}

// statsResp snapshots the served wallet and the shared metrics registry.
func (s *Server) statsResp() wire.StatsResp {
	ws := s.w.Stats()
	resp := wire.StatsResp{
		Role:               s.role,
		Seq:                s.w.Seq(),
		Delegations:        ws.Delegations,
		Revoked:            ws.Revoked,
		TTLTracked:         ws.TTLTracked,
		Watches:            ws.Watches,
		CacheHits:          ws.Cache.Hits,
		CacheMisses:        ws.Cache.Misses,
		CacheInvalidations: ws.Cache.Invalidations,
		CacheEntries:       ws.Cache.Entries,
		CacheNegatives:     ws.Cache.Negatives,
		SigCacheHits:       ws.SigCache.Hits,
		SigCacheMisses:     ws.SigCache.Misses,
		SigCacheEvictions:  ws.SigCache.Evictions,
		SigCacheSize:       ws.SigCache.Size,
		Metrics:            s.obs.Registry().Snapshot(),
	}
	if s.guard != nil {
		resp.Cluster = s.guard.Stats()
	}
	if s.dhtStats != nil {
		resp.DHT = s.dhtStats()
	}
	ws2 := wire.StatsSnapshot()
	resp.Wire = &ws2
	return resp
}

// subscribe wires a wallet subscription to notification pushes on this
// connection, replacing any previous subscription for the same delegation.
func (s *Server) subscribe(cs *connState, id core.DelegationID) {
	handler := func(ev subs.Event) {
		err := cs.send(wire.TNotify, 0, wire.NotifyPush{
			Delegation: ev.Delegation,
			Kind:       ev.Kind.String(),
			At:         ev.At,
		})
		if err != nil {
			// The push is lost (peer gone or write raced teardown); the
			// subscription dies with the connection, so log, don't retry.
			s.m.pushErrors.Inc()
			s.obs.Log().Warn("notify push failed",
				"delegation", ev.Delegation.Short(), "kind", ev.Kind.String(), "error", err)
			return
		}
		s.m.pushes.Inc()
		s.obs.Log().Debug("notify push",
			"delegation", ev.Delegation.Short(), "kind", ev.Kind.String())
	}
	cancel := s.w.Subscribe(id, handler)
	cs.subMu.Lock()
	defer cs.subMu.Unlock()
	if cs.cancels == nil { // connection already torn down
		cancel()
		return
	}
	if old, ok := cs.cancels[id]; ok {
		old()
	}
	cs.cancels[id] = cancel
}

// streamBuffer bounds queued changelog pushes per subscribe-all stream.
// The wallet handler enqueues without blocking: an overflow drops the push
// (and its seq with it), which the follower's gap detector converts into a
// resync — a slow replica self-heals at snapshot cost instead of stalling
// the primary's mutation path.
const streamBuffer = 1024

// subscribeAll wires the wallet's full changelog onto this connection: a
// wildcard wallet subscription enqueues every event (Published events carry
// the full bundle so followers need no read-back) and a writer goroutine
// drains the queue onto the wire. Returns the wallet seq observed after the
// stream became live; every mutation with a greater seq will be delivered.
func (s *Server) subscribeAll(cs *connState, rep wallet.Replicable) (uint64, error) {
	ch := make(chan wire.NotifyPush, streamBuffer)
	quit := make(chan struct{})
	handler := func(ev subs.Event) {
		push := wire.NotifyPush{
			Delegation: ev.Delegation,
			Kind:       ev.Kind.String(),
			At:         ev.At,
			Seq:        ev.Seq,
		}
		if ev.Kind == subs.Published {
			// The handler runs under the wallet's mutation lock, so the
			// fetched bundle is exactly the state at this seq.
			if d, support, ok := rep.Get(ev.Delegation); ok {
				push.Bundle = &wire.SyncBundle{Delegation: d, Support: support}
			}
		}
		select {
		case ch <- push:
		default:
			s.m.pushErrors.Inc()
			s.obs.Log().Warn("changelog stream overflow; push dropped",
				"peer", cs.conn.Peer().ID().Short(),
				"delegation", ev.Delegation.Short(), "seq", ev.Seq)
		}
	}
	cancelSub := rep.SubscribeAll(handler)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancelSub()
			close(quit)
		})
	}

	cs.subMu.Lock()
	if cs.cancels == nil { // connection already torn down
		cs.subMu.Unlock()
		stop()
		return 0, errors.New("connection closed")
	}
	old := cs.streamStop
	cs.streamStop = stop
	cs.subMu.Unlock()
	if old != nil {
		old()
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case push := <-ch:
				if err := cs.send(wire.TNotify, 0, push); err != nil {
					// The connection is gone; the stream dies with it and
					// teardown (or a replacement stream) calls stop.
					s.m.pushErrors.Inc()
					s.obs.Log().Debug("changelog push failed",
						"seq", push.Seq, "error", err)
					return
				}
				s.m.pushes.Inc()
			case <-quit:
				return
			}
		}
	}()

	// Read after the handler is registered: any mutation sequenced past
	// this point is guaranteed to reach the stream, so the client can
	// compare against its bootstrap snapshot for a gap-free handover.
	return s.w.Seq(), nil
}
