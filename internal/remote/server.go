// Package remote serves a wallet over the authenticated transport and
// provides the client stubs used by distributed discovery (§4.2): remote
// publication, the three query kinds, delegation subscriptions with push
// notifications, revocation, and home-wallet authorization proofs.
package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

// Server exposes one wallet to the network.
type Server struct {
	w  *wallet.Wallet
	ln transport.Listener
	// directFallback, when set, is consulted after a direct query misses
	// the wallet — the hook hierarchical caching proxies use to pull
	// credentials through from an upstream wallet (§6).
	directFallback func(wallet.Query) (*core.Proof, error)

	mu     sync.Mutex
	conns  map[transport.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Options customizes a served wallet.
type Options struct {
	// DirectFallback runs when a direct query finds no proof locally; a
	// non-nil proof it returns is served to the client. Used by
	// pull-through caches.
	DirectFallback func(wallet.Query) (*core.Proof, error)
}

// Serve starts accepting connections for w on ln. Close shuts it down.
func Serve(w *wallet.Wallet, ln transport.Listener) *Server {
	return ServeOptions(w, ln, Options{})
}

// ServeOptions is Serve with customization.
func ServeOptions(w *wallet.Wallet, ln transport.Listener, opts Options) *Server {
	s := &Server{
		w:              w,
		ln:             ln,
		directFallback: opts.DirectFallback,
		conns:          make(map[transport.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the served address.
func (s *Server) Addr() string { return s.ln.Addr() }

// Wallet returns the served wallet.
func (s *Server) Wallet() *wallet.Wallet { return s.w }

// Close stops the listener, tears down every connection, and waits for the
// handler goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// connState tracks per-connection subscription cancels and serializes
// writes (responses can interleave with notification pushes).
type connState struct {
	conn transport.Conn

	writeMu sync.Mutex
	subMu   sync.Mutex
	cancels map[core.DelegationID]func()
}

func (cs *connState) send(t wire.MsgType, id uint64, body any) error {
	frame, err := wire.Encode(t, id, body)
	if err != nil {
		return err
	}
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return cs.conn.Send(frame)
}

func (cs *connState) sendErr(id uint64, err error) {
	resp := wire.ErrorResp{Message: err.Error(), NoProof: errors.Is(err, core.ErrNoProof)}
	_ = cs.send(wire.TError, id, resp)
}

// maxInflightPerConn bounds concurrently served requests per connection;
// beyond it the read loop blocks, pushing back on the peer instead of
// spawning unbounded goroutines.
const maxInflightPerConn = 64

func (s *Server) handleConn(conn transport.Conn) {
	defer s.wg.Done()
	cs := &connState{conn: conn, cancels: make(map[core.DelegationID]func())}
	var inflight sync.WaitGroup
	defer func() {
		inflight.Wait()
		cs.subMu.Lock()
		for _, cancel := range cs.cancels {
			cancel()
		}
		cs.cancels = nil
		cs.subMu.Unlock()
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// Requests are served concurrently: slow proof searches must not stall
	// the pipeline behind them. Clients correlate responses by envelope ID,
	// so completion order is free to differ from arrival order.
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		env, err := wire.Decode(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		sem <- struct{}{}
		inflight.Add(1)
		go func(env wire.Envelope) {
			defer func() {
				<-sem
				inflight.Done()
			}()
			s.dispatch(cs, env)
		}(env)
	}
}

func (s *Server) dispatch(cs *connState, env wire.Envelope) {
	switch env.Type {
	case wire.TPing:
		_ = cs.send(wire.TPong, env.ID, nil)

	case wire.TPublish:
		var req wire.PublishReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		var err error
		if req.TTLSeconds > 0 {
			err = s.w.InsertCached(req.Delegation, req.Support, time.Duration(req.TTLSeconds)*time.Second)
		} else {
			err = s.w.Publish(req.Delegation, req.Support...)
		}
		if err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		_ = cs.send(wire.TOK, env.ID, nil)

	case wire.TQueryDirect:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		q := wallet.Query{
			Subject:     req.Subject,
			Object:      req.Object,
			Constraints: req.Constraints,
			Direction:   req.Direction,
		}
		p, err := s.w.QueryDirect(q)
		if err != nil && errors.Is(err, core.ErrNoProof) && s.directFallback != nil {
			p, err = s.directFallback(q)
		}
		if err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		_ = cs.send(wire.TProof, env.ID, wire.ProofResp{Proof: p})

	case wire.TQuerySubject:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		proofs := s.w.QuerySubject(req.Subject, req.Constraints)
		_ = cs.send(wire.TProofs, env.ID, wire.ProofsResp{Proofs: proofs})

	case wire.TQueryObject:
		var req wire.QueryReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		proofs := s.w.QueryObject(req.Object, req.Constraints)
		_ = cs.send(wire.TProofs, env.ID, wire.ProofsResp{Proofs: proofs})

	case wire.TSubscribe:
		var req wire.SubscribeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		s.subscribe(cs, req.Delegation)
		_ = cs.send(wire.TOK, env.ID, nil)

	case wire.TUnsubscribe:
		var req wire.SubscribeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		cs.subMu.Lock()
		if cancel, ok := cs.cancels[req.Delegation]; ok {
			cancel()
			delete(cs.cancels, req.Delegation)
		}
		cs.subMu.Unlock()
		_ = cs.send(wire.TOK, env.ID, nil)

	case wire.TRevoke:
		var req wire.RevokeReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		// Authorization: the authenticated peer must be the issuer.
		if err := s.w.Revoke(req.Delegation, cs.conn.Peer().ID()); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		_ = cs.send(wire.TOK, env.ID, nil)

	case wire.THas:
		var req wire.HasReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		_ = cs.send(wire.TOK, env.ID, wire.HasResp{Present: s.w.Contains(req.Delegation)})

	case wire.TProveRole:
		var req wire.ProveRoleReq
		if err := wire.DecodeBody(env, &req); err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		owner := s.w.Owner()
		if owner == nil {
			cs.sendErr(env.ID, fmt.Errorf("wallet has no operating identity"))
			return
		}
		p, err := s.w.QueryDirect(wallet.Query{
			Subject: core.SubjectEntity(owner.ID()),
			Object:  req.Role,
		})
		if err != nil {
			cs.sendErr(env.ID, err)
			return
		}
		_ = cs.send(wire.TProof, env.ID, wire.ProofResp{Proof: p})

	default:
		cs.sendErr(env.ID, fmt.Errorf("unknown request type %q", env.Type))
	}
}

// subscribe wires a wallet subscription to notification pushes on this
// connection, replacing any previous subscription for the same delegation.
func (s *Server) subscribe(cs *connState, id core.DelegationID) {
	handler := func(ev subs.Event) {
		_ = cs.send(wire.TNotify, 0, wire.NotifyPush{
			Delegation: ev.Delegation,
			Kind:       ev.Kind.String(),
			At:         ev.At,
		})
	}
	cancel := s.w.Subscribe(id, handler)
	cs.subMu.Lock()
	defer cs.subMu.Unlock()
	if cs.cancels == nil { // connection already torn down
		cancel()
		return
	}
	if old, ok := cs.cancels[id]; ok {
		old()
	}
	cs.cancels[id] = cancel
}
