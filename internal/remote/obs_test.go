package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"
	"time"

	"drbac/internal/obs"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, s.b.Len())
	copy(out, s.b.Bytes())
	return out
}

// serveInstrumented starts a served wallet with a metrics registry and a
// debug JSON logger.
func serveInstrumented(e *env, addr, ownerName string) (*wallet.Wallet, *obs.Registry, *syncBuf) {
	e.t.Helper()
	buf := &syncBuf{}
	reg := obs.NewRegistry()
	o := obs.New(obs.NewLogger(buf, slog.LevelDebug, true), reg)
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir, Obs: o})
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		e.t.Fatal(err)
	}
	s := Serve(w, ln)
	e.t.Cleanup(s.Close)
	return w, reg, buf
}

// TestStatsMessage publishes and queries against an instrumented served
// wallet, then fetches the stats snapshot remotely — the wire path behind
// `drbac stats`.
func TestStatsMessage(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	srvW, _, _ := serveInstrumented(e, "wallet.main", "BigISP")
	d := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := srvW.Publish(d); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(context.Background(), e.net.Dialer(e.id("Maria")), "wallet.main")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// One remote hit and one remote no-proof, so counters move.
	if _, err := c.QueryDirect(context.Background(), e.subject("Mark"), e.role("BigISP.memberServices"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryDirect(context.Background(), e.subject("Maria"), e.role("BigISP.memberServices"), nil, 0); err == nil {
		t.Fatal("expected no proof")
	}

	resp, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Delegations != 1 {
		t.Errorf("delegations = %d, want 1", resp.Delegations)
	}
	// 2 queries + the stats request itself have been served by now.
	if got := resp.Metrics.Counters["drbac_server_requests_total"]; got < 2 {
		t.Errorf("server requests = %d, want >= 2", got)
	}
	if got := resp.Metrics.Counters["drbac_server_noproof_total"]; got != 1 {
		t.Errorf("server noproof = %d, want 1", got)
	}
	if got := resp.Metrics.Counters["drbac_wallet_query_direct_total"]; got != 2 {
		t.Errorf("wallet direct queries = %d, want 2", got)
	}
	if got := resp.Metrics.Gauges["drbac_wallet_delegations"]; got != 1 {
		t.Errorf("delegations gauge = %d, want 1", got)
	}
	if h := resp.Metrics.Histograms["drbac_server_request_seconds"]; h.Count < 2 {
		t.Errorf("request latency observations = %d, want >= 2", h.Count)
	}
	if len(resp.Metrics.Histograms["drbac_server_request_seconds"].Buckets) == 0 {
		t.Error("histogram buckets lost on the wire")
	}
}

// TestStatsOnUninstrumentedServer checks the stats message still answers
// (wallet summary only, empty metrics) when the server has no Obs.
func TestStatsOnUninstrumentedServer(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	_, w := e.serve("wallet.bigisp", "BigISP")
	if err := w.Publish(e.deleg("[Mark -> BigISP.memberServices] BigISP")); err != nil {
		t.Fatal(err)
	}
	c := e.dial("wallet.bigisp", "Maria")
	resp, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Delegations != 1 {
		t.Errorf("delegations = %d, want 1", resp.Delegations)
	}
	if len(resp.Metrics.Counters) != 0 || len(resp.Metrics.Histograms) != 0 {
		t.Errorf("uninstrumented server exported metrics: %+v", resp.Metrics)
	}
}

// TestServerAuditLog checks every request type leaves a structured audit
// record naming the peer and the outcome.
func TestServerAuditLog(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w, _, buf := serveInstrumented(e, "wallet.bigisp", "BigISP")
	if err := w.Publish(e.deleg("[Mark -> BigISP.memberServices] BigISP")); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(context.Background(), e.net.Dialer(e.id("Maria")), "wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.QueryDirect(context.Background(), e.subject("Mark"), e.role("BigISP.memberServices"), nil, 0); err != nil {
		t.Fatal(err)
	}

	// The audit record is written after the response is sent; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var got map[string]any
		for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("bad log line %q: %v", line, err)
			}
			if rec["msg"] == "request" && rec["type"] == "query-direct" {
				got = rec
			}
		}
		if got != nil {
			if got["peer"] != e.id("Maria").ID().Short() {
				t.Errorf("audit peer = %v, want %s", got["peer"], e.id("Maria").ID().Short())
			}
			if got["found"] != true {
				t.Errorf("audit found = %v, want true", got["found"])
			}
			if _, ok := got["duration_ms"]; !ok {
				t.Error("audit record missing duration_ms")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no query-direct audit record in logs:\n%s", buf.Bytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPushMetrics checks notification pushes are counted.
func TestPushMetrics(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w, reg, _ := serveInstrumented(e, "wallet.bigisp", "BigISP")
	d := e.deleg("[Mark -> BigISP.memberServices] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(context.Background(), e.net.Dialer(e.id("Maria")), "wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	got := make(chan struct{}, 1)
	cancel, err := c.Subscribe(context.Background(), d.ID(), func(subs.Event) { got <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := w.Revoke(d.ID(), e.id("BigISP").ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("push not delivered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Snapshot().Counters["drbac_server_pushes_total"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("push not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A TNotify push whose body does not decode must not kill the connection or
// vanish silently: the client counts and logs the drop, and later
// well-formed pushes still reach their subscriber.
func TestMalformedPushCountedNotFatal(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria")
	// The fake server below speaks hand-rolled JSON envelopes, so pin the
	// connection to the JSON codec instead of letting it negotiate binary.
	ln, err := e.net.ListenCodec("fake.wallet", e.id("BigISP"),
		transport.CodecPolicy{Advertise: []string{transport.CodecJSON}})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan transport.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			connCh <- conn
		}
	}()

	c, err := Dial(context.Background(), e.net.Dialer(e.id("Maria")), "fake.wallet")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := &syncBuf{}
	reg := obs.NewRegistry()
	c.Obs = obs.New(obs.NewLogger(buf, slog.LevelDebug, true), reg)
	server := <-connCh
	defer server.Close()

	// Subscribe by hand: answer the client's subscribe request with OK.
	events := make(chan subs.Event, 1)
	subDone := make(chan error, 1)
	go func() {
		frame, err := server.Recv()
		if err != nil {
			subDone <- err
			return
		}
		env, err := wire.Decode(frame)
		if err != nil {
			subDone <- err
			return
		}
		ok, _ := wire.Encode(wire.TOK, env.ID, nil)
		subDone <- server.Send(ok)
	}()
	cancel, err := c.Subscribe(context.Background(), "d-1", func(ev subs.Event) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	// Close the client before canceling: the fake server never answers the
	// unsubscribe call, and cancel on a closed client returns immediately.
	defer cancel()
	defer c.Close()
	if err := <-subDone; err != nil {
		t.Fatal(err)
	}

	// A push whose body is a JSON array cannot decode into NotifyPush.
	bad, err := json.Marshal(wire.Envelope{
		Type: wire.TNotify, Body: json.RawMessage(`["not", "a", "push"]`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Send(bad); err != nil {
		t.Fatal(err)
	}
	good, err := wire.Encode(wire.TNotify, 0, wire.NotifyPush{
		Delegation: "d-1", Kind: "revoked", At: e.clk.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Send(good); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-events:
		if ev.Delegation != "d-1" {
			t.Fatalf("event for %q, want d-1", ev.Delegation)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("well-formed push after a malformed one never arrived")
	}
	if !c.Healthy() {
		t.Fatal("malformed push killed the connection")
	}
	if n := reg.Snapshot().Counters["drbac_remote_push_decode_errors_total"]; n != 1 {
		t.Fatalf("decode-error counter = %d, want 1", n)
	}
	if !bytes.Contains(buf.Bytes(), []byte("undecodable body")) {
		t.Fatal("malformed push was not logged")
	}
}
