package discovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/transport"
	"drbac/internal/wallet"
	"drbac/internal/wire"
)

// maliciousWallet speaks the wallet wire protocol but answers every direct
// query with an attacker-supplied proof. It stands in for a compromised or
// hostile home wallet.
func serveMalicious(t *testing.T, net *transport.MemNetwork, addr string, id *core.Identity, forged *core.Proof) {
	t.Helper()
	ln, err := net.Listen(addr, id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					frame, err := conn.Recv()
					if err != nil {
						return
					}
					env, err := wire.Decode(frame)
					if err != nil {
						return
					}
					var resp []byte
					switch env.Type {
					case wire.TQueryDirect:
						resp, err = wire.Encode(wire.TProof, env.ID, wire.ProofResp{Proof: forged})
					case wire.TQuerySubject, wire.TQueryObject:
						resp, err = wire.Encode(wire.TProofs, env.ID, wire.ProofsResp{Proofs: []*core.Proof{forged}})
					default:
						resp, err = wire.Encode(wire.TOK, env.ID, nil)
					}
					if err != nil {
						return
					}
					if err := conn.Send(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
}

// A hostile home wallet serving a forged proof (tampered signature) must
// not get its credentials into the trusted local wallet, and discovery must
// conclude no proof exists rather than trusting the forgery.
func TestDiscoveryRejectsForgedProofs(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Mallory", "Server")
	// Mallory forges a delegation claiming to be issued by AirNet: she
	// takes a genuine AirNet delegation shape but cannot sign it, so she
	// re-signs nothing and just tampers the object.
	genuine := e.deleg("[Maria -> AirNet.guest] AirNet")
	forged := *genuine
	forged.Object = core.NewRole(e.id("AirNet").ID(), "access") // tampered
	forgedProof, err := core.NewProof(core.ProofStep{Delegation: &forged})
	if err != nil {
		t.Fatal(err)
	}

	serveMalicious(t, e.net, "wallet.evil", e.ids["Mallory"], forgedProof)

	a, local := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.evil", core.SubjectSearch, core.ObjectNone))

	_, err = a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}, Auto, nil)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("forged proof was accepted: %v", err)
	}
	if local.Len() != 0 {
		t.Fatalf("forged credentials entered the trusted wallet: %d", local.Len())
	}
}

// A hostile wallet serving a *genuine* credential for the wrong
// relationship cannot satisfy the query either: the local wallet validates
// and assembles independently.
func TestDiscoveryRevalidatesGenuineButIrrelevantProofs(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Mallory", "Server")
	guest := e.deleg("[Maria -> AirNet.guest] AirNet") // real, but not access
	guestProof, err := core.NewProof(core.ProofStep{Delegation: guest})
	if err != nil {
		t.Fatal(err)
	}
	serveMalicious(t, e.net, "wallet.evil", e.ids["Mallory"], guestProof)

	a, local := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.evil", core.SubjectSearch, core.ObjectNone))
	_, err = a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}, Auto, nil)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("irrelevant credential satisfied the query: %v", err)
	}
	// The genuine guest credential may legitimately be cached; what must
	// not exist is any proof of access.
	if _, err := local.QueryDirect(wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("local wallet believes the forgery: %v", err)
	}
}

// A server that answers with protocol garbage must not wedge the client.
func TestClientSurvivesGarbageResponses(t *testing.T) {
	e := newEnv(t, "Mallory", "Server")
	ln, err := e.net.Listen("wallet.garbage", e.ids["Mallory"])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
			if err := conn.Send([]byte("{this is not json")); err != nil {
				return
			}
		}
	}()

	a, _ := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Server"), e.tag("wallet.garbage", core.SubjectSearch, core.ObjectNone))
	done := make(chan error, 1)
	go func() {
		_, err := a.Discover(context.Background(), wallet.Query{
			Subject: e.subject("Server"),
			Object:  e.role("Mallory.x"),
		}, Auto, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("want ErrNoProof, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("discovery wedged on garbage responses")
	}
}
