package discovery

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/wallet"
)

// serveCollected starts a served wallet whose obs bundle retains every
// completed trace (head sampling 1.0), returning the wallet and its
// collector.
func serveCollected(t *testing.T, e *env, addr, ownerName string) (*wallet.Wallet, *obs.Collector) {
	t.Helper()
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	col := obs.NewCollector(reg, obs.CollectorConfig{SampleRate: 1})
	o.SetCollector(col)
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir, Obs: o})
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		t.Fatal(err)
	}
	s := remote.Serve(w, ln)
	t.Cleanup(s.Close)
	return w, col
}

// TestRetainedTraceNestsRemoteHops is the tentpole acceptance test: a
// three-wallet chain discovery yields one retained trace whose span tree
// nests each wallet's serve span under the originating agent's rpc span,
// with the remote halves fetched over the wire `trace` request and merged.
func TestRetainedTraceNestsRemoteHops(t *testing.T) {
	e := newEnv(t, "A", "B", "User", "Server")
	wa, colA := serveCollected(t, e, "wallet.a", "A")
	wb, colB := serveCollected(t, e, "wallet.b", "B")

	tagA := e.tag("wallet.a", core.SubjectSearch, core.ObjectNone)
	tagB := e.tag("wallet.b", core.SubjectSearch, core.ObjectNone)

	parsed, err := core.ParseDelegation("[User -> A.member] A", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.ObjectTag = &tagA
	d1, err := core.Issue(e.id("A"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}

	parsed, err = core.ParseDelegation("[A.member -> B.mid] B", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &tagA
	parsed.Template.ObjectTag = &tagB
	d2, err := core.Issue(e.id("B"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Publish(d2); err != nil {
		t.Fatal(err)
	}

	parsed, err = core.ParseDelegation("[B.mid -> B.guest] B", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &tagB
	d3, err := core.Issue(e.id("B"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.Publish(d3); err != nil {
		t.Fatal(err)
	}

	// The originating agent, with its own retaining collector.
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	colLocal := obs.NewCollector(reg, obs.CollectorConfig{SampleRate: 1})
	o.SetCollector(colLocal)
	local := wallet.New(wallet.Config{Owner: e.id("Server"), Clock: e.clk, Directory: e.dir, Obs: o})
	agent := NewAgent(Config{Local: local, Dialer: e.net.Dialer(e.id("Server")), Obs: o})
	t.Cleanup(agent.Close)
	if err := local.Publish(d1); err != nil {
		t.Fatal(err)
	}
	agent.Learn(d1)

	proof, err := agent.Discover(context.Background(), wallet.Query{
		Subject: e.subject("User"),
		Object:  e.role("B.guest"),
	}, Auto, nil)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if proof.Len() != 3 {
		t.Fatalf("proof length = %d, want 3", proof.Len())
	}

	// Exactly one trace at the originator, rooted in the discovery span.
	traces := colLocal.List(obs.ListFilter{})
	if len(traces) != 1 {
		t.Fatalf("originator retained %d traces, want 1: %+v", len(traces), traces)
	}
	tid := traces[0].ID
	if traces[0].Root != "discover" {
		t.Fatalf("trace root = %q, want discover", traces[0].Root)
	}
	localSpans := colLocal.Spans(tid)
	rpcIDs := make(map[string]bool)
	for _, sp := range localSpans {
		if sp.ParentID != "" && sp.Name != "discover" {
			rpcIDs[sp.SpanID] = true
		}
	}
	if len(rpcIDs) == 0 {
		t.Fatalf("originator trace has no rpc child spans: %+v", localSpans)
	}

	// Each server's half of the trace finalizes after its response is sent;
	// poll the collectors briefly.
	deadline := time.Now().Add(2 * time.Second)
	var spansA, spansB []obs.SpanRecord
	for {
		spansA, spansB = colA.Spans(tid), colB.Spans(tid)
		if (len(spansA) > 0 && len(spansB) > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for name, spans := range map[string][]obs.SpanRecord{"wallet.a": spansA, "wallet.b": spansB} {
		if len(spans) == 0 {
			t.Fatalf("%s retained no spans for trace %s", name, tid)
		}
		for _, sp := range spans {
			if !rpcIDs[sp.ParentID] {
				t.Errorf("%s span %s (%s) has parent %q, not an originator rpc span",
					name, sp.SpanID, sp.Name, sp.ParentID)
			}
		}
	}

	// Fetch the remote halves over the wire `trace` request — what `drbac
	// trace` does — and check the merged tree nests both hops under the
	// originating query span.
	merged := append([]obs.SpanRecord{}, localSpans...)
	for _, addr := range []string{"wallet.a", "wallet.b"} {
		c, err := remote.Dial(context.Background(), e.net.Dialer(e.id("Server")), addr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Trace(context.Background(), tid)
		c.Close()
		if err != nil {
			t.Fatalf("trace rpc to %s: %v", addr, err)
		}
		if !resp.Found {
			t.Fatalf("%s reports trace %s not found", addr, tid)
		}
		merged = append(merged, resp.Spans...)
	}
	tree := obs.BuildSpanTree(merged)
	if len(tree) != 1 || tree[0].Name != "discover" {
		t.Fatalf("merged tree has %d roots (want 1, discover): %+v", len(tree), tree)
	}
	serves := 0
	for _, rpc := range tree[0].Children {
		for _, child := range rpc.Children {
			if child.Name == "serve:query-direct" || child.Name == "serve:query-subject" ||
				child.Name == "serve:query-object" {
				serves++
			}
		}
	}
	if serves < 2 {
		t.Errorf("merged tree nests %d serve spans under rpc spans, want >= 2", serves)
	}
}

// TestSlowQueryRetainedAtZeroSampling forces a query over the slow
// threshold with head sampling off: the trace must be tail-retained, the
// wallet must emit the warn-level slow-query record, and the query SLO's
// p99 gauge and breach counter must move.
func TestSlowQueryRetainedAtZeroSampling(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Server")
	buf := &syncBuf{}
	reg := obs.NewRegistry()
	o := obs.New(obs.NewLogger(buf, slog.LevelInfo, true), reg)
	// 1ns slow threshold: every real query is "slow"; 0% head sampling:
	// only the tail-sampling rules can retain anything.
	o.SetCollector(obs.NewCollector(reg, obs.CollectorConfig{
		SampleRate:    0,
		SlowThreshold: time.Nanosecond,
	}))
	o.RegisterSLO(obs.NewSLO(reg, "query", time.Nanosecond, 0, 0))
	local := wallet.New(wallet.Config{Owner: e.id("Server"), Clock: e.clk, Directory: e.dir, Obs: o})
	agent := NewAgent(Config{Local: local, Dialer: e.net.Dialer(e.id("Server")), Obs: o})
	t.Cleanup(agent.Close)

	if err := local.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, Auto, nil); err != nil {
		t.Fatalf("discover: %v", err)
	}

	traces := o.TraceCollector().List(obs.ListFilter{})
	if len(traces) == 0 {
		t.Fatal("slow trace not retained at 0% head sampling")
	}
	if !traces[0].Slow {
		t.Errorf("retained trace not marked slow: %+v", traces[0])
	}

	// The wallet's slow-query record: warn level, trace ID, effort attrs.
	var slowLogged bool
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec["msg"] != "slow query" {
			continue
		}
		slowLogged = true
		if rec["level"] != "WARN" {
			t.Errorf("slow query logged at %v, want WARN", rec["level"])
		}
		if id, _ := rec["trace"].(string); id != traces[0].ID {
			t.Errorf("slow query trace = %v, want %s", rec["trace"], traces[0].ID)
		}
		for _, attr := range []string{"duration_ms", "cache", "search_nodes"} {
			if _, ok := rec[attr]; !ok {
				t.Errorf("slow query record missing %q: %v", attr, rec)
			}
		}
	}
	if !slowLogged {
		t.Error("no slow-query record in the log")
	}

	// The SLO observed the breach.
	s := reg.Snapshot()
	if got := s.Counters["drbac_slo_query_total"]; got < 1 {
		t.Errorf("drbac_slo_query_total = %d, want >= 1", got)
	}
	if got := s.Counters["drbac_slo_query_breaches_total"]; got < 1 {
		t.Errorf("drbac_slo_query_breaches_total = %d, want >= 1", got)
	}
	if got := s.Gauges["drbac_slo_query_p99_us"]; got <= 0 {
		t.Errorf("drbac_slo_query_p99_us = %d, want > 0", got)
	}
	if got := s.Gauges["drbac_slo_query_burn_pct"]; got < 100 {
		t.Errorf("drbac_slo_query_burn_pct = %d, want >= 100 with every query breaching", got)
	}
}
