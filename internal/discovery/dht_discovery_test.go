package discovery

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/dht"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/wallet"
)

// dhtWallet is a served wallet that also participates in the DHT: its
// server answers dht-* requests and its node can announce the owner
// entity's provider record.
type dhtWallet struct {
	w      *wallet.Wallet
	node   *dht.Node
	peers  *peer.Manager
	server *remote.Server
	addr   string
	owner  *core.Identity
}

// serveDHTWallet starts a wallet server with a DHT participant at addr.
func serveDHTWallet(t *testing.T, e *env, addr, ownerName string) *dhtWallet {
	t.Helper()
	owner := e.id(ownerName)
	peers := peer.NewManager(peer.Config{
		Dialer:      e.net.Dialer(owner),
		Clock:       e.clk,
		CallTimeout: 5 * time.Second,
	})
	node, err := dht.NewNode(dht.Config{
		Identity: owner,
		Addr:     addr,
		Peers:    peers,
		Clock:    e.clk,
		K:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	dw := &dhtWallet{
		w:     wallet.New(wallet.Config{Owner: owner, Clock: e.clk, Directory: e.dir}),
		node:  node,
		peers: peers,
		addr:  addr,
		owner: owner,
	}
	dw.serveAt(t, e, addr)
	t.Cleanup(func() {
		dw.server.Close()
		peers.Close()
	})
	return dw
}

// serveAt (re)starts the wallet server, possibly at a new address — the
// leave/rejoin path.
func (dw *dhtWallet) serveAt(t *testing.T, e *env, addr string) {
	t.Helper()
	ln, err := e.net.Listen(addr, dw.owner)
	if err != nil {
		t.Fatal(err)
	}
	dw.addr = addr
	dw.server = remote.ServeOptions(dw.w, ln, remote.Options{DHT: dw.node, DHTStats: dw.node.Stats})
}

// clientDHT builds an unserved client-side DHT node (resolution is pull-
// based; the querying side needs no listener).
func clientDHT(t *testing.T, e *env, ownerName string) (*dht.Node, *peer.Manager) {
	t.Helper()
	owner := e.id(ownerName)
	peers := peer.NewManager(peer.Config{
		Dialer:      e.net.Dialer(owner),
		Clock:       e.clk,
		CallTimeout: 5 * time.Second,
	})
	node, err := dht.NewNode(dht.Config{
		Identity: owner,
		Addr:     "wallet.client.unreachable",
		Peers:    peers,
		Clock:    e.clk,
		K:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(peers.Close)
	return node, peers
}

// issueChain issues the untagged three-link chain
// Maria -> BigISP.member -> AirNet.member -> AirNet.access once, so two
// topologies can serve the very same credentials. No delegation carries
// any discovery tag: locating the homes is entirely the resolver's problem.
func issueChain(t *testing.T, e *env) (d1, d2, d3 *core.Delegation, q wallet.Query) {
	t.Helper()
	d1 = e.deleg("[Maria -> BigISP.member] BigISP")
	d2 = e.deleg("[BigISP.member -> AirNet.member] AirNet")
	d3 = e.deleg("[AirNet.member -> AirNet.access] AirNet")
	return d1, d2, d3, wallet.Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")}
}

// spreadChain publishes the chain across its wallets: the first link in
// the querying client's local wallet, the rest at the two homes.
func spreadChain(t *testing.T, local, bigW, airW *wallet.Wallet, d1, d2, d3 *core.Delegation) {
	t.Helper()
	if err := local.Publish(d1); err != nil {
		t.Fatal(err)
	}
	if err := bigW.Publish(d2); err != nil {
		t.Fatal(err)
	}
	if err := airW.Publish(d3); err != nil {
		t.Fatal(err)
	}
}

// dhtTopologyNames keeps both runs of the byte-identical comparison on the
// same deterministic identities.
var dhtTopologyNames = []string{"BigISP", "AirNet", "Maria", "Client", "Seed"}

// TestDiscoveryViaDHTMatchesStaticRun is the subsystem's end-to-end
// acceptance: with only a bootstrap seed configured — zero static tag-home
// addresses — a three-wallet chain discovery completes through DHT-resolved
// homes and returns a proof byte-identical to a fully statically configured
// run over the same identities.
func TestDiscoveryViaDHTMatchesStaticRun(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, dhtTopologyNames...)
	d1, d2, d3, q := issueChain(t, e)

	// Static-address run: the same chain served from statically named
	// homes, configured by RegisterTag.
	bigS := e.serve("static.bigisp", "BigISP")
	airS := e.serve("static.airnet", "AirNet")
	localS := wallet.New(wallet.Config{Owner: e.id("Client"), Clock: e.clk, Directory: e.dir})
	spreadChain(t, localS, bigS, airS, d1, d2, d3)
	aS := NewAgent(Config{Local: localS, Dialer: e.net.Dialer(e.id("Client"))})
	t.Cleanup(aS.Close)
	for node, home := range map[string]string{
		"BigISP.member": "static.bigisp",
		"AirNet.member": "static.airnet",
		"AirNet.access": "static.airnet",
	} {
		aS.RegisterTag(core.SubjectRole(e.role(node)), e.tag(home, core.SubjectSearch, core.ObjectSearch))
	}
	staticProof, err := aS.Discover(ctx, q, Auto, nil)
	if err != nil {
		t.Fatalf("static-address discovery: %v", err)
	}

	// DHT run: the same credentials, no RegisterTag anywhere. Homes
	// announce themselves; the client knows only the bootstrap seed.
	seed := serveDHTWallet(t, e, "wallet.seed", "Seed")
	big := serveDHTWallet(t, e, "wallet.bigisp", "BigISP")
	air := serveDHTWallet(t, e, "wallet.airnet", "AirNet")
	for _, dw := range []*dhtWallet{big, air} {
		if err := dw.node.Bootstrap(ctx, []string{seed.addr}); err != nil {
			t.Fatalf("bootstrap %s: %v", dw.addr, err)
		}
		if err := dw.node.Announce(ctx, dw.owner, []string{dw.addr}); err != nil {
			t.Fatalf("announce %s: %v", dw.addr, err)
		}
	}
	cnode, cpeers := clientDHT(t, e, "Client")
	if err := cnode.Bootstrap(ctx, []string{seed.addr}); err != nil {
		t.Fatal(err)
	}
	localD := wallet.New(wallet.Config{Owner: e.id("Client"), Clock: e.clk, Directory: e.dir})
	spreadChain(t, localD, big.w, air.w, d1, d2, d3)
	aD := NewAgent(Config{Local: localD, Peers: cpeers, Directory: cnode})
	t.Cleanup(aD.Close)

	var stats Stats
	dhtProof, err := aD.Discover(ctx, q, Auto, &stats)
	if err != nil {
		t.Fatalf("DHT-resolved discovery: %v", err)
	}
	if len(dhtProof.Delegations()) < 3 {
		t.Fatalf("proof has %d delegations, want the full 3-link chain", len(dhtProof.Delegations()))
	}
	if stats.WalletsContacted < 2 {
		t.Fatalf("wallets contacted = %d; both homes should have been found via the DHT", stats.WalletsContacted)
	}

	gotStatic, err := json.Marshal(staticProof)
	if err != nil {
		t.Fatal(err)
	}
	gotDHT, err := json.Marshal(dhtProof)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotStatic) != string(gotDHT) {
		t.Fatalf("DHT-resolved proof differs from the static-address proof:\nstatic: %s\ndht:    %s", gotStatic, gotDHT)
	}
}

// TestDHTDiscoverySurvivesBootstrapDeathAndHomeRejoin is the subsystem's
// chaos case: after everyone joined through the seed, the seed dies AND one
// home wallet leaves and rejoins at a different address mid-run. The
// re-announced provider record (higher seq) supersedes the old one on the
// surviving nodes, so discovery follows the move with no configuration
// change anywhere — something a static address book cannot do at all.
func TestDHTDiscoverySurvivesBootstrapDeathAndHomeRejoin(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, dhtTopologyNames...)
	seed := serveDHTWallet(t, e, "wallet.seed", "Seed")
	big := serveDHTWallet(t, e, "wallet.bigisp", "BigISP")
	air := serveDHTWallet(t, e, "wallet.airnet", "AirNet")
	for _, dw := range []*dhtWallet{big, air} {
		if err := dw.node.Bootstrap(ctx, []string{seed.addr}); err != nil {
			t.Fatal(err)
		}
		if err := dw.node.Announce(ctx, dw.owner, []string{dw.addr}); err != nil {
			t.Fatal(err)
		}
	}
	cnode, cpeers := clientDHT(t, e, "Client")
	if err := cnode.Bootstrap(ctx, []string{seed.addr}); err != nil {
		t.Fatal(err)
	}

	// The bootstrap node dies. Routing tables already hold the other
	// members, so nothing below may depend on the seed answering.
	seed.server.Close()

	// AirNet's home leaves and rejoins at a NEW address, re-announcing.
	// The record's bumped seq beats the old one wherever both are seen.
	air.server.Close()
	air.serveAt(t, e, "wallet.airnet-b")
	if err := air.node.Announce(ctx, air.owner, []string{"wallet.airnet-b"}); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	local := wallet.New(wallet.Config{Owner: e.id("Client"), Clock: e.clk, Directory: e.dir})
	d1, d2, d3, q := issueChain(t, e)
	spreadChain(t, local, big.w, air.w, d1, d2, d3)
	a := NewAgent(Config{Local: local, Peers: cpeers, Directory: cnode})

	var stats Stats
	proof, err := a.Discover(ctx, q, Auto, &stats)
	if err != nil {
		t.Fatalf("discovery after bootstrap death + home move: %v", err)
	}
	if len(proof.Delegations()) < 3 {
		t.Fatalf("proof has %d delegations, want the full 3-link chain", len(proof.Delegations()))
	}
	// The chain's last link must have come from the REJOINED address.
	contactedNew := false
	for _, ev := range stats.Trace {
		if ev.Wallet == "wallet.airnet-b" {
			contactedNew = true
		}
	}
	if !contactedNew {
		t.Fatalf("discovery never contacted the rejoined home: %+v", stats.Trace)
	}

	// Everything the search spawned unwinds: no goroutine leaks. The
	// shared pool's connections (and with them the servers' per-conn
	// read loops) are torn down explicitly; Close is idempotent, so the
	// registered cleanup closing it again is harmless.
	a.Close()
	cpeers.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines = %d after the run, want <= %d (leak)", n, before)
	}
}
