package discovery

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/peer"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// healingDialer wraps a fault-injecting dialer and heals one address after a
// fixed number of failed dials, modeling a wallet that flaps: down when the
// search first reaches it, back up by the time the search retries.
type healingDialer struct {
	transport.Dialer
	plan  *transport.Faults
	addr  string
	heal  int32
	fails atomic.Int32
}

func (d *healingDialer) Dial(ctx context.Context, addr string) (transport.Conn, error) {
	conn, err := d.Dialer.Dial(ctx, addr)
	if err != nil && addr == d.addr {
		if d.fails.Add(1) >= d.heal {
			d.plan.Clear(addr)
		}
	}
	return conn, err
}

// setupChaosTopology builds a three-wallet coalition: the chain
// Maria -> BigISP.member -> AirNet.member -> AirNet.access spans the local
// server wallet (holding the first link), BigISP's home (the second), and
// AirNet's home (the third). The forward frontier needs wallet.bigisp and
// the reverse frontier wallet.airnet, so a full proof requires both homes.
func setupChaosTopology(t *testing.T, e *env, d transport.Dialer, tweak func(*Config)) (*Agent, wallet.Query) {
	t.Helper()
	bigISPWallet := e.serve("wallet.bigisp", "BigISP")
	airNetWallet := e.serve("wallet.airnet", "AirNet")

	bigISPMemberTag := e.tag("wallet.bigisp", core.SubjectSearch, core.ObjectNone)
	airNetAccessTag := e.tag("wallet.airnet", core.SubjectNone, core.ObjectSearch)

	parsed, err := core.ParseDelegation("[Maria -> BigISP.member] BigISP", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.ObjectTag = &bigISPMemberTag
	d1, err := core.Issue(e.id("BigISP"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}

	parsed, err = core.ParseDelegation("[BigISP.member -> AirNet.member] AirNet", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &bigISPMemberTag
	d2, err := core.Issue(e.id("AirNet"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := bigISPWallet.Publish(d2); err != nil {
		t.Fatal(err)
	}
	if err := airNetWallet.Publish(e.deleg("[AirNet.member -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}

	local := wallet.New(wallet.Config{Owner: e.id("AirNetServer"), Clock: e.clk, Directory: e.dir})
	cfg := Config{Local: local, Dialer: d}
	if tweak != nil {
		tweak(&cfg)
	}
	a := NewAgent(cfg)
	t.Cleanup(a.Close)
	if err := local.Publish(d1); err != nil {
		t.Fatal(err)
	}
	a.Learn(d1)
	a.RegisterTag(core.SubjectRole(e.role("AirNet.access")), airNetAccessTag)
	return a, wallet.Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")}
}

// A discovery over three wallets survives one home flapping: BigISP's home
// refuses the round-1 dial, the round still makes progress at AirNet's home,
// and round 2 retries the healed BigISP home and completes the proof.
func TestDiscoverySurvivesFlappingHome(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Maria", "AirNetServer")
	plan := transport.NewFaults()
	plan.Set("wallet.bigisp", transport.Fault{RefuseDial: true})
	hd := &healingDialer{
		Dialer: &transport.FaultDialer{Inner: e.net.Dialer(e.id("AirNetServer")), Plan: plan},
		plan:   plan,
		addr:   "wallet.bigisp",
		heal:   1,
	}
	a, q := setupChaosTopology(t, e, hd, nil)

	var stats Stats
	proof, err := a.Discover(context.Background(), q, Auto, &stats)
	if err != nil {
		t.Fatalf("discovery across a flapping home: %v", err)
	}
	if proof == nil || len(proof.Delegations()) < 3 {
		t.Fatalf("proof = %v, want the full 3-link chain", proof)
	}
	if hd.fails.Load() < 1 {
		t.Fatal("the injected flap never fired; the test proved nothing")
	}
	if stats.Rounds < 2 {
		t.Fatalf("rounds = %d; the search should have needed a retry round", stats.Rounds)
	}
	if stats.WalletsContacted != 2 {
		t.Fatalf("wallets contacted = %d, want 2", stats.WalletsContacted)
	}
	h := a.Peers().HealthOf("wallet.bigisp")
	if h.State != peer.StateClosed || h.ConsecutiveFailures != 0 || !h.Connected {
		t.Fatalf("bigisp health after recovery = %+v, want closed/connected", h)
	}
}

// A home whose connection dies mid-search (after a fixed number of frames)
// is retried on a fresh connection once the link heals, and the search
// completes rather than erroring out.
func TestDiscoverySurvivesMidSearchConnectionBreak(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Maria", "AirNetServer")
	plan := transport.NewFaults()
	// The first connection to BigISP's home dies after one frame: the
	// round-1 query sends but its answer never arrives.
	plan.Set("wallet.bigisp", transport.Fault{FailAfterFrames: 1})
	hd := &healingDialer{
		Dialer: &transport.FaultDialer{Inner: e.net.Dialer(e.id("AirNetServer")), Plan: plan},
		plan:   plan,
		addr:   "wallet.bigisp",
		heal:   0, // never heal via dial failures; heal manually below
	}
	a, q := setupChaosTopology(t, e, hd, nil)

	// First attempt: the broken link starves the forward frontier; the
	// reverse side still fetches AirNet's link, but the chain stays short.
	// Whether this attempt errors or exhausts progress depends on timing;
	// either way it must not wedge.
	if _, err := a.Discover(context.Background(), q, Auto, nil); err == nil {
		t.Fatal("discovery succeeded while the BigISP link was broken")
	}

	plan.Clear("wallet.bigisp")
	var stats Stats
	proof, err := a.Discover(context.Background(), q, Auto, &stats)
	if err != nil {
		t.Fatalf("discovery after the link healed: %v", err)
	}
	if proof == nil || len(proof.Delegations()) < 3 {
		t.Fatalf("proof = %v, want the full 3-link chain", proof)
	}
}

// A canceled context aborts discovery mid-flight — while a peer RPC is in
// the air — promptly and without leaking goroutines.
func TestDiscoverCanceledContextReturnsPromptly(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Maria", "AirNetServer")
	plan := transport.NewFaults()
	// AirNet's home answers, but the answer crawls: the in-flight RPC can
	// only end via context cancellation.
	plan.Set("wallet.airnet", transport.Fault{FrameDelay: 2 * time.Second})
	d := &transport.FaultDialer{Inner: e.net.Dialer(e.id("AirNetServer")), Plan: plan}
	a, q := setupChaosTopology(t, e, d, nil)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Discover(ctx, q, Auto, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("discover = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("discover took %v after cancellation; should unwind promptly", elapsed)
	}

	// Tear down the pooled connections and confirm every goroutine the
	// aborted search spawned unwinds (the delayed read loop needs a moment).
	a.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines = %d after abort, want <= %d (leak)", n, before)
	}
}
