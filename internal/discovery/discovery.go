// Package discovery implements dRBAC's distributed delegation-chain
// discovery (§4.2.1): a parallel breadth-first search across wallet homes,
// directed by discovery tags, that pulls the missing sub-proofs into the
// local trusted wallet until a full proof of the queried trust relationship
// can be assembled — searching subject-towards-object, object-towards-
// subject, or bidirectionally.
package discovery

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// Mode selects the search direction across wallets (§4.2.3).
type Mode int

const (
	// Auto follows discovery-tag flags: forward where subjects are
	// searchable, reverse where objects are, both when both allow it.
	Auto Mode = iota
	// ForwardOnly searches subject-towards-object regardless of tags.
	ForwardOnly
	// ReverseOnly searches object-towards-subject regardless of tags.
	ReverseOnly
)

// Config parameterizes a discovery agent.
type Config struct {
	// Local is the trusted wallet fetched credentials are inserted into.
	Local *wallet.Wallet
	// Dialer opens authenticated connections to wallet homes. Ignored when
	// Peers is set.
	Dialer transport.Dialer
	// Peers, if non-nil, is a shared connection pool the agent uses instead
	// of building its own over Dialer. The caller owns its lifecycle.
	Peers *peer.Manager
	// VerifyHomes requires each home wallet to prove it holds the
	// discovery tag's authorization role before it is trusted (§4.2.1).
	VerifyHomes bool
	// MaxRounds bounds search rounds; 0 means DefaultMaxRounds.
	MaxRounds int
	// DisableRangeAdjustment turns off the §4.2.3 modulated-attribute-range
	// optimization (remote queries then carry the original constraints).
	// Ablation switch for EXP-S2b.
	DisableRangeAdjustment bool
	// Resolver, if non-nil, computes a discovery tag for nodes the tag
	// book has no entry for. A sharded cluster gateway uses it to point
	// every node at its owning shard's replica group — "zero-latency
	// tags": a k-shard proof assembly becomes a k-home discovery without
	// any tag ever having been published. Learned tags still win; the
	// resolver is the fallback.
	Resolver func(core.Subject) (core.DiscoveryTag, bool)
	// Directory, if non-nil, resolves the home wallet of nodes neither the
	// tag book nor the Resolver can place — the DHT. It is the last
	// fallback, so statically configured addresses keep working unchanged
	// and the DHT only fields genuinely unknown homes.
	Directory HomeDirectory
	// DirectoryTTL is the cache TTL stamped on tags synthesized from
	// Directory answers; 0 means DefaultDirectoryTagTTL.
	DirectoryTTL time.Duration
	// Obs, if non-nil, receives discovery metrics and spans: each Discover
	// runs under a trace ID (minted here unless the query already carries
	// one) that also propagates to every wallet home it queries, so one
	// cross-wallet discovery reads as a single trace. When nil, the local
	// wallet's own Obs is used instead.
	Obs *obs.Obs
}

// DefaultMaxRounds bounds the breadth-first rounds of a discovery.
const DefaultMaxRounds = 16

// DefaultDirectoryTagTTL is the cache TTL for credentials fetched from
// homes the DHT located. Kept short: a DHT answer is only as fresh as its
// provider record, so cached copies re-confirm sooner than statically
// configured homes would.
const DefaultDirectoryTagTTL = 30 * time.Second

// HomeDirectory locates an entity's home-wallet addresses at discovery
// time. *dht.Node implements it: the entity's ID keys a signed provider
// record published by the home itself, so an answer is self-certifying
// rather than operator-configured.
type HomeDirectory interface {
	Resolve(ctx context.Context, entity core.EntityID) ([]string, error)
}

// TraceEvent records one remote interaction for tests and experiments.
type TraceEvent struct {
	Round   int
	Wallet  string
	Kind    string // "direct", "subject", "object"
	Node    string
	Results int
}

// Stats accumulates discovery effort, the currency of the §4.2.3
// experiments.
type Stats struct {
	Rounds             int
	WalletsContacted   int
	RemoteQueries      int
	DelegationsFetched int
	Trace              []TraceEvent
}

// agentMetrics holds the agent's pre-resolved instruments; the zero value
// is inert (nil instruments no-op).
type agentMetrics struct {
	discoveries   *obs.Counter
	found         *obs.Counter
	rounds        *obs.Counter
	remoteQueries *obs.Counter
	fetched       *obs.Counter
	contacted     *obs.Counter
	latency       *obs.Histogram
}

func newAgentMetrics(o *obs.Obs) agentMetrics {
	if o.Registry() == nil {
		return agentMetrics{}
	}
	return agentMetrics{
		discoveries:   o.Counter("drbac_discovery_total"),
		found:         o.Counter("drbac_discovery_found_total"),
		rounds:        o.Counter("drbac_discovery_rounds_total"),
		remoteQueries: o.Counter("drbac_discovery_remote_queries_total"),
		fetched:       o.Counter("drbac_discovery_delegations_fetched_total"),
		contacted:     o.Counter("drbac_discovery_wallets_contacted_total"),
		latency:       o.Histogram("drbac_discovery_seconds"),
	}
}

// Agent performs distributed discovery against a local wallet. It learns
// discovery tags from every credential it sees and caches connections to
// wallet homes.
type Agent struct {
	cfg Config
	obs *obs.Obs
	m   agentMetrics
	// peers pools connections to wallet homes with backoff and circuit
	// breaking; ownsPeers records whether Close should tear it down.
	peers     *peer.Manager
	ownsPeers bool

	mu sync.Mutex
	// tags is the agent's tag book: the home and flags for each graph node.
	tags map[core.Subject]core.DiscoveryTag
	// contacted dedupes the WalletsContacted stat across the agent's
	// lifetime (the pool may silently redial a flapping home many times).
	contacted map[string]bool
	// origin records which home a cached delegation came from, for
	// coherence subscriptions.
	origin map[core.DelegationID]string
	// verified remembers homes that passed the auth-role check.
	verified map[string]bool
}

// NewAgent builds a discovery agent over a local wallet.
func NewAgent(cfg Config) *Agent {
	o := cfg.Obs
	if o == nil && cfg.Local != nil {
		o = cfg.Local.Obs()
	}
	a := &Agent{
		cfg:       cfg,
		obs:       o,
		m:         newAgentMetrics(o),
		tags:      make(map[core.Subject]core.DiscoveryTag),
		contacted: make(map[string]bool),
		origin:    make(map[core.DelegationID]string),
		verified:  make(map[string]bool),
	}
	if cfg.Peers != nil {
		a.peers = cfg.Peers
	} else {
		a.peers = peer.NewManager(peer.Config{Dialer: cfg.Dialer, Obs: o})
		a.ownsPeers = true
	}
	return a
}

// Peers exposes the agent's connection pool, e.g. for health inspection.
func (a *Agent) Peers() *peer.Manager { return a.peers }

// Close drops all pooled connections (only when the agent owns the pool).
func (a *Agent) Close() {
	if a.ownsPeers {
		a.peers.Close()
	}
}

// RegisterTag seeds the agent's tag book, e.g. with the querying
// application's own knowledge of a role's home wallet.
func (a *Agent) RegisterTag(node core.Subject, tag core.DiscoveryTag) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tags[node] = tag.Normalize()
}

// Tag returns the known discovery tag for a node: the tag book first,
// then the configured Resolver (computed tags) as fallback.
func (a *Agent) Tag(node core.Subject) (core.DiscoveryTag, bool) {
	a.mu.Lock()
	t, ok := a.tags[node]
	a.mu.Unlock()
	if ok {
		return t, true
	}
	if a.cfg.Resolver != nil {
		return a.cfg.Resolver(node)
	}
	return core.DiscoveryTag{}, false
}

// tagFor resolves a node's discovery tag for a search round: the tag book
// and Resolver first (Tag), then the DHT directory. A directory hit
// synthesizes a searchable tag pointing at the addresses the entity's own
// signed provider record names — no static address book required. The
// record itself was verified inside the DHT layer before it was ever
// served, so a forged home cannot be planted here.
func (a *Agent) tagFor(ctx context.Context, node core.Subject) (core.DiscoveryTag, bool) {
	if t, ok := a.Tag(node); ok {
		return t, true
	}
	if a.cfg.Directory == nil {
		return core.DiscoveryTag{}, false
	}
	ent := node.Entity
	if !node.IsEntity() {
		// A role lives in its namespace entity's wallet.
		ent = node.Role.Namespace
	}
	addrs, err := a.cfg.Directory.Resolve(ctx, ent)
	if err != nil || len(addrs) == 0 {
		return core.DiscoveryTag{}, false
	}
	ttl := a.cfg.DirectoryTTL
	if ttl <= 0 {
		ttl = DefaultDirectoryTagTTL
	}
	return core.DiscoveryTag{
		Home:    remote.JoinAddrs(addrs),
		TTL:     ttl,
		Subject: core.SubjectSearch,
		Object:  core.ObjectSearch,
	}, true
}

// Learn harvests discovery tags from a credential's annotations. The
// discovery rounds call it on every fetched credential; applications call
// it when credentials arrive out of band (e.g. Figure 2 step 1, where the
// user's software hands the server its membership delegation directly).
func (a *Agent) Learn(d *core.Delegation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.SubjectTag != nil {
		a.tags[d.Subject] = d.SubjectTag.Normalize()
	}
	if d.ObjectTag != nil {
		a.tags[core.SubjectRole(d.Object)] = d.ObjectTag.Normalize()
	}
	if d.IssuerTag != nil {
		a.tags[core.SubjectEntity(d.Issuer.ID())] = d.IssuerTag.Normalize()
	}
}

// client returns a pooled connection to a wallet home, verifying its
// authorization role when configured. A tag home may be a comma-separated
// replica group ("primary,replica1,…" — §9); the pool fails over within the
// group, and the returned address identifies the member actually connected,
// for failure reporting. A home whose circuit is open fails fast without a
// dial attempt.
func (a *Agent) client(ctx context.Context, tag core.DiscoveryTag, stats *Stats) (*remote.Client, string, error) {
	c, addr, err := a.peers.GetAny(ctx, remote.SplitAddrs(tag.Home))
	if err != nil {
		if !errors.Is(err, peer.ErrCircuitOpen) {
			a.obs.Log().Warn("discovery dial failed", "home", tag.Home, "error", err)
		}
		return nil, "", fmt.Errorf("discovery: dial home %s: %w", tag.Home, err)
	}
	a.mu.Lock()
	first := !a.contacted[addr]
	a.contacted[addr] = true
	a.mu.Unlock()
	if first {
		a.obs.Log().Debug("discovery dialed home", "home", tag.Home, "addr", addr)
		if stats != nil {
			stats.WalletsContacted++
		}
	}
	if a.cfg.VerifyHomes && !tag.AuthRole.IsZero() {
		// Each group member proves the authorization role independently: a
		// replica is only trusted as the home's stand-in if the home's
		// operator delegated the auth role to the replica's identity.
		a.mu.Lock()
		done := a.verified[addr]
		a.mu.Unlock()
		if !done {
			if _, err := c.ProveRole(ctx, tag.AuthRole, a.cfg.Local.Now()); err != nil {
				a.reportIfBroken(addr, c)
				return nil, "", fmt.Errorf("discovery: home %s failed authorization: %w", addr, err)
			}
			a.mu.Lock()
			a.verified[addr] = true
			a.mu.Unlock()
		}
	}
	return c, addr, nil
}

// reportIfBroken feeds an RPC failure back to the pool, but only when the
// connection itself is dead: application-level errors (a NoProof response,
// a rejected revocation) travel over a healthy connection and say nothing
// about the peer's availability.
func (a *Agent) reportIfBroken(home string, c *remote.Client) {
	if c != nil && !c.Healthy() {
		a.peers.ReportFailure(home, c)
	}
}

// insertProofs stores fetched sub-proofs into the local wallet as TTL-
// coherent cached copies, learning tags along the way. Returns how many new
// delegations were stored.
func (a *Agent) insertProofs(proofs []*core.Proof, from string, ttl time.Duration, stats *Stats) int {
	// Pre-warm the wallet's signature memo across the whole fetched batch
	// (primary chains plus support proofs) in parallel; the per-delegation
	// InsertCached validations below then run warm.
	var batch []*core.Delegation
	for _, p := range proofs {
		batch = append(batch, p.Delegations()...)
	}
	core.PrimeDelegations(a.cfg.Local.SigVerifier(), batch)
	inserted := 0
	for _, p := range proofs {
		for _, st := range p.Steps {
			d := st.Delegation
			a.Learn(d)
			if a.cfg.Local.Contains(d.ID()) {
				continue
			}
			if err := a.cfg.Local.InsertCached(d, st.Support, ttl); err != nil {
				continue // invalid credential from remote: skip it
			}
			inserted++
			a.mu.Lock()
			a.origin[d.ID()] = from
			a.mu.Unlock()
			// Support-proof delegations are part of the credential too.
			for _, sp := range st.Support {
				for _, sd := range sp.Delegations() {
					a.Learn(sd)
				}
			}
		}
	}
	if stats != nil {
		stats.DelegationsFetched += inserted
	}
	return inserted
}

// Discover finds a proof for q, pulling missing credentials from wallet
// homes as directed by discovery tags. Fetched credentials are inserted
// into the local wallet (Figure 2, step 5) so the final proof is assembled
// locally. stats may be nil.
//
// Each Discover runs under a trace ID — q.TraceID, or one minted here —
// that the local wallet logs under and that every remote query carries, so
// the whole cross-wallet search reads as one trace.
//
// Cancellation of ctx aborts the search mid-flight: in-flight peer RPCs
// unwind, no further homes are dialed, and the context error is returned.
func (a *Agent) Discover(ctx context.Context, q wallet.Query, mode Mode, stats *Stats) (*core.Proof, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.Ctx = ctx
	if q.TraceID == "" {
		q.TraceID = obs.NewTraceID()
	}
	// Accumulate effort even when the caller doesn't ask for it, so the
	// metrics registry sees every discovery.
	st := stats
	if st == nil {
		st = &Stats{}
	}
	a.m.discoveries.Inc()
	sp := a.obs.StartSpan(q.TraceID, "discover",
		"subject", q.Subject.String(), "object", q.Object.String())
	// Carry the span in the context so layers below without a span
	// parameter (peer dials in particular) parent their work under it.
	ctx = obs.ContextWithSpan(ctx, sp)
	q.Ctx = ctx
	p, err := a.discover(ctx, q, mode, st, sp)
	d := sp.End("found", err == nil,
		"rounds", st.Rounds, "remote_queries", st.RemoteQueries, "fetched", st.DelegationsFetched)
	if thr := a.obs.SlowThreshold(); thr > 0 && d >= thr {
		// Slow-query capture: the trace itself is retained by the
		// collector's tail sampling; this Warn record makes it visible in
		// the logs with the search-effort attributes attached.
		a.obs.Log().Warn("slow discovery",
			"trace", q.TraceID,
			"subject", q.Subject.String(), "object", q.Object.String(),
			"found", err == nil,
			"rounds", st.Rounds,
			"remote_queries", st.RemoteQueries,
			"wallets_contacted", st.WalletsContacted,
			"fetched", st.DelegationsFetched,
			"duration_ms", float64(d.Microseconds())/1000)
	}
	a.m.latency.Observe(d.Seconds())
	if err == nil {
		a.m.found.Inc()
	}
	a.m.rounds.Add(int64(st.Rounds))
	a.m.remoteQueries.Add(int64(st.RemoteQueries))
	a.m.fetched.Add(int64(st.DelegationsFetched))
	a.m.contacted.Add(int64(st.WalletsContacted))
	return p, err
}

func (a *Agent) discover(ctx context.Context, q wallet.Query, mode Mode, stats *Stats, sp *obs.Span) (*core.Proof, error) {
	// Step: try locally first (Figure 2, step 2).
	if p, err := a.cfg.Local.QueryDirect(q); err == nil {
		sp.Event("local hit")
		return p, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	maxRounds := a.cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	queriedFwd := make(map[core.Subject]bool)
	queriedRev := make(map[core.Subject]bool)

	for round := 1; round <= maxRounds; round++ {
		stats.Rounds = round
		progress := 0
		if mode == Auto || mode == ForwardOnly {
			n, found, err := a.forwardRound(ctx, q, mode, round, queriedFwd, stats, sp)
			progress += n
			if err != nil {
				return nil, err
			}
			if found != nil {
				return found, nil
			}
		}
		if mode == Auto || mode == ReverseOnly {
			n, found, err := a.reverseRound(ctx, q, mode, round, queriedRev, stats, sp)
			progress += n
			if err != nil {
				return nil, err
			}
			if found != nil {
				return found, nil
			}
		}
		// Re-check locally after each round: the two frontiers may have
		// met in the middle.
		if p, err := a.cfg.Local.QueryDirect(q); err == nil {
			return p, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if progress == 0 {
			break
		}
	}
	return nil, core.ErrNoProof
}

// traceCtx is the wire trace context for one remote query: the rpc child
// span's position when tracing is on, or just the bare trace ID so remote
// logs still correlate when the agent has no Obs.
func traceCtx(rsp *obs.Span, traceID string) obs.TraceContext {
	if rsp == nil {
		return obs.TraceContext{TraceID: traceID}
	}
	return rsp.Context()
}

// finishRPC closes an rpc child span, recording transport failures (a
// no-proof answer is a normal outcome, not a failure).
func finishRPC(rsp *obs.Span, err error) {
	if rsp == nil {
		return
	}
	if err != nil && !errors.Is(err, core.ErrNoProof) {
		rsp.Fail(err)
	}
	rsp.End("ok", err == nil)
}

// forwardRound expands the subject-side frontier: every node currently
// reachable from the query subject whose tag allows subject-directed
// search gets one direct query and, failing that, one subject query at its
// home wallet. Queries carry constraints adjusted by the locally known
// prefix modifiers (§4.2.3 "modulated attribute ranges"), so remote
// wallets prune continuations the accumulated chain can no longer afford.
func (a *Agent) forwardRound(ctx context.Context, q wallet.Query, mode Mode, round int, queried map[core.Subject]bool, stats *Stats, sp *obs.Span) (int, *core.Proof, error) {
	frontier := []core.Subject{q.Subject}
	prefixes := make(map[core.Subject][]core.Aggregate)
	for _, p := range a.cfg.Local.QuerySubject(q.Subject, nil) {
		node := core.SubjectRole(p.Object)
		frontier = append(frontier, node)
		if ag, err := p.Aggregate(); err == nil {
			prefixes[node] = append(prefixes[node], ag)
		}
	}
	progress := 0
	for _, node := range frontier {
		if err := ctx.Err(); err != nil {
			return progress, nil, err
		}
		if queried[node] {
			continue
		}
		tag, ok := a.tagFor(ctx, node)
		if !ok {
			continue
		}
		if mode == Auto && tag.Subject != core.SubjectSearch && tag.Subject != core.SubjectStore {
			continue
		}
		c, home, err := a.client(ctx, tag, stats)
		if err != nil {
			// The home is unreachable this round; leave the node unqueried
			// so a later round retries it once the peer recovers. Progress
			// elsewhere keeps the search alive meanwhile.
			continue
		}
		// Only a reachable home consumes the node's single query budget.
		queried[node] = true
		remaining := q.Constraints
		if !a.cfg.DisableRangeAdjustment {
			remaining = looseAdjust(q.Constraints, prefixes[node])
		}
		// Direct query for the original relationship rooted at this node.
		if stats != nil {
			stats.RemoteQueries++
		}
		rsp := sp.StartChild("rpc:direct", "wallet", home, "node", node.String())
		p, err := c.QueryDirectTraced(ctx, traceCtx(rsp, q.TraceID), node, q.Object, remaining, 0)
		finishRPC(rsp, err)
		if err == nil {
			n := a.insertProofs([]*core.Proof{p}, tag.Home, tag.TTL, stats)
			progress += n
			a.trace(sp, stats, round, home, "direct", node.String(), 1)
			if full, err := a.cfg.Local.QueryDirect(q); err == nil {
				return progress, full, nil
			}
			continue
		}
		if !errors.Is(err, core.ErrNoProof) {
			a.reportIfBroken(home, c)
			queried[node] = false // answer never arrived; retry next round
			continue
		}
		// Fall back to a subject query; its results root further search.
		if stats != nil {
			stats.RemoteQueries++
		}
		rsp = sp.StartChild("rpc:subject", "wallet", home, "node", node.String())
		proofs, err := c.QuerySubjectTraced(ctx, traceCtx(rsp, q.TraceID), node, remaining)
		finishRPC(rsp, err)
		if err != nil {
			a.reportIfBroken(home, c)
			queried[node] = false
			continue
		}
		a.trace(sp, stats, round, home, "subject", node.String(), len(proofs))
		progress += a.insertProofs(proofs, tag.Home, tag.TTL, stats)
	}
	return progress, nil, nil
}

// reverseRound expands the object-side frontier symmetrically: the locally
// known suffix modifiers adjust the constraints the missing prefix must
// still satisfy.
func (a *Agent) reverseRound(ctx context.Context, q wallet.Query, mode Mode, round int, queried map[core.Subject]bool, stats *Stats, sp *obs.Span) (int, *core.Proof, error) {
	frontier := []core.Role{q.Object}
	suffixes := make(map[core.Role][]core.Aggregate)
	for _, p := range a.cfg.Local.QueryObject(q.Object, nil) {
		if !p.Subject.IsEntity() {
			frontier = append(frontier, p.Subject.Role)
			if ag, err := p.Aggregate(); err == nil {
				suffixes[p.Subject.Role] = append(suffixes[p.Subject.Role], ag)
			}
		}
	}
	progress := 0
	for _, role := range frontier {
		if err := ctx.Err(); err != nil {
			return progress, nil, err
		}
		node := core.SubjectRole(role)
		if queried[node] {
			continue
		}
		tag, ok := a.tagFor(ctx, node)
		if !ok {
			continue
		}
		if mode == Auto && tag.Object != core.ObjectSearch && tag.Object != core.ObjectStore {
			continue
		}
		c, home, err := a.client(ctx, tag, stats)
		if err != nil {
			continue // home unreachable: retry the node next round
		}
		queried[node] = true
		remaining := q.Constraints
		if !a.cfg.DisableRangeAdjustment {
			remaining = looseAdjust(q.Constraints, suffixes[role])
		}
		if stats != nil {
			stats.RemoteQueries++
		}
		rsp := sp.StartChild("rpc:direct", "wallet", home, "node", node.String())
		p, err := c.QueryDirectTraced(ctx, traceCtx(rsp, q.TraceID), q.Subject, role, remaining, 0)
		finishRPC(rsp, err)
		if err == nil {
			n := a.insertProofs([]*core.Proof{p}, tag.Home, tag.TTL, stats)
			progress += n
			a.trace(sp, stats, round, home, "direct", node.String(), 1)
			if full, err := a.cfg.Local.QueryDirect(q); err == nil {
				return progress, full, nil
			}
			continue
		}
		if !errors.Is(err, core.ErrNoProof) {
			a.reportIfBroken(home, c)
			queried[node] = false
			continue
		}
		if stats != nil {
			stats.RemoteQueries++
		}
		rsp = sp.StartChild("rpc:object", "wallet", home, "node", node.String())
		proofs, err := c.QueryObjectTraced(ctx, traceCtx(rsp, q.TraceID), role, remaining)
		finishRPC(rsp, err)
		if err != nil {
			a.reportIfBroken(home, c)
			queried[node] = false
			continue
		}
		a.trace(sp, stats, round, home, "object", node.String(), len(proofs))
		progress += a.insertProofs(proofs, tag.Home, tag.TTL, stats)
	}
	return progress, nil, nil
}

// Bridge establishes delegation subscriptions at the home wallets of every
// remotely sourced delegation in p (Figure 2: the dotted inter-wallet
// subscription lines), keeping the local cached copies coherent: remote
// revocations and expirations invalidate the local copy, which in turn
// fires any local proof monitors; renewals extend the local TTL. It
// returns a cancel function releasing all subscriptions.
func (a *Agent) Bridge(ctx context.Context, p *core.Proof) (cancel func(), err error) {
	var cancels []func()
	release := func() {
		for _, c := range cancels {
			c()
		}
	}
	for _, d := range p.Delegations() {
		id := d.ID()
		a.mu.Lock()
		home, remoteSourced := a.origin[id]
		a.mu.Unlock()
		if !remoteSourced {
			continue
		}
		tag, _ := a.Tag(d.Subject)
		c, _, err := a.client(ctx, tagWithHome(tag.Normalize(), home), nil)
		if err != nil {
			release()
			return nil, err
		}
		ttl := tag.TTL
		cancelOne, err := c.Subscribe(ctx, id, func(ev subs.Event) {
			switch ev.Kind {
			case subs.Revoked:
				a.cfg.Local.AcceptRevocation(ev.Delegation)
			case subs.Expired, subs.Stale:
				a.cfg.Local.SweepExpired()
				a.cfg.Local.SweepStaleCache()
			case subs.Renewed:
				if ttl > 0 {
					a.cfg.Local.RenewCached(ev.Delegation, ttl)
				}
			}
		})
		if err != nil {
			release()
			return nil, err
		}
		cancels = append(cancels, cancelOne)
	}
	return release, nil
}

// tagWithHome overrides a tag's home address: the recorded origin wallet is
// authoritative for where the credential was actually fetched.
func tagWithHome(t core.DiscoveryTag, home string) core.DiscoveryTag {
	t.Home = home
	return t
}

// KeepFresh starts a background loop that re-confirms every remotely
// cached delegation with its home wallet each interval (§4.2.1: a cached
// copy is valid for TTL after "validity confirmation from its home
// wallet"). A confirmed credential has its local TTL renewed; one the home
// no longer holds is marked revoked locally (the home removes credentials
// only on revocation or expiry, and either way the cached copy must go).
// The returned stop function is idempotent and waits for the loop to exit.
func (a *Agent) KeepFresh(interval time.Duration) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-a.cfg.Local.Clock().After(interval):
				a.refreshOnce()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// refreshOnce runs one confirmation sweep over the origin-tracked cache.
func (a *Agent) refreshOnce() {
	a.mu.Lock()
	tracked := make(map[core.DelegationID]string, len(a.origin))
	for id, home := range a.origin {
		tracked[id] = home
	}
	a.mu.Unlock()

	for id, home := range tracked {
		d, _, ok := a.cfg.Local.Get(id)
		if !ok {
			a.mu.Lock()
			delete(a.origin, id)
			a.mu.Unlock()
			continue
		}
		tag, _ := a.Tag(d.Subject)
		c, _, err := a.client(context.Background(), tagWithHome(tag.Normalize(), home), nil)
		if err != nil {
			continue // home unreachable: let the TTL lapse naturally
		}
		present, err := c.Has(context.Background(), id)
		if err != nil {
			continue
		}
		if present {
			ttl := tag.TTL
			if ttl <= 0 {
				continue
			}
			a.cfg.Local.RenewCached(id, ttl)
			continue
		}
		// The home dropped it: revoked or expired there; drop our copy.
		a.cfg.Local.AcceptRevocation(id)
		a.mu.Lock()
		delete(a.origin, id)
		a.mu.Unlock()
	}
}

// AuditFinding reports one delegation's registry status (§6: the paper
// suggests 'S'/'O' discovery flags can "require public registry of further
// delegation", giving coalitions an audit trail for re-delegation).
type AuditFinding struct {
	Delegation core.DelegationID
	// Home is the wallet that should hold the delegation ("" when no tag
	// demands registration).
	Home string
	// Required reports whether a store-required flag applies.
	Required bool
	// Registered reports whether the home wallet confirmed holding it
	// (meaningful only when Required).
	Registered bool
}

// AuditRegistry checks every delegation of a proof against the §6 registry
// discipline: a delegation whose subject carries a store-required subject
// flag ('s'/'S') must be present in the subject's home wallet, and one
// whose object carries a store-required object flag ('o'/'O') must be
// present in the object's home wallet. Off-registry delegations are the
// unauditable re-delegations the scheme exists to expose.
func (a *Agent) AuditRegistry(ctx context.Context, p *core.Proof) ([]AuditFinding, error) {
	var out []AuditFinding
	for _, d := range p.Delegations() {
		finding := AuditFinding{Delegation: d.ID()}
		var tag core.DiscoveryTag
		switch {
		case d.SubjectTag != nil &&
			(d.SubjectTag.Subject == core.SubjectStore || d.SubjectTag.Subject == core.SubjectSearch):
			tag = d.SubjectTag.Normalize()
		case d.ObjectTag != nil &&
			(d.ObjectTag.Object == core.ObjectStore || d.ObjectTag.Object == core.ObjectSearch):
			tag = d.ObjectTag.Normalize()
		default:
			out = append(out, finding)
			continue
		}
		finding.Required = true
		finding.Home = tag.Home
		c, _, err := a.client(ctx, tag, nil)
		if err != nil {
			return nil, fmt.Errorf("discovery: audit %s: %w", d.ID().Short(), err)
		}
		present, err := c.Has(ctx, d.ID())
		if err != nil {
			return nil, fmt.Errorf("discovery: audit %s: %w", d.ID().Short(), err)
		}
		finding.Registered = present
		out = append(out, finding)
	}
	return out, nil
}

// looseAdjust folds known partial-chain modifiers into the constraints the
// missing part of the chain must satisfy. With several known partial
// chains the *least* restrictive adjustment is used, so the remote wallet
// never prunes a continuation that could still combine with some local
// partial chain — soundness over maximal pruning.
func looseAdjust(constraints []core.Constraint, partials []core.Aggregate) []core.Constraint {
	if len(constraints) == 0 || len(partials) == 0 {
		return constraints
	}
	out := make([]core.Constraint, len(constraints))
	copy(out, constraints)
	for i, c := range constraints {
		best := math.Inf(-1)
		for _, ag := range partials {
			adjusted := core.AdjustConstraints([]core.Constraint{c}, ag)[0].Base
			if adjusted > best {
				best = adjusted
			}
		}
		out[i].Base = best
	}
	return out
}

// trace records one remote interaction both in the caller's Stats and as a
// span event — the single sink the old ad-hoc trace helper and the obs
// tracer now share.
func (a *Agent) trace(sp *obs.Span, stats *Stats, round int, home, kind, node string, results int) {
	if stats != nil {
		stats.Trace = append(stats.Trace, TraceEvent{
			Round: round, Wallet: home, Kind: kind, Node: node, Results: results,
		})
	}
	sp.Event("remote query",
		"round", round, "wallet", home, "kind", kind, "node", node, "results", results)
}
