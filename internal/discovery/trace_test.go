package discovery

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/remote"
	"drbac/internal/wallet"
)

// syncBuf is a concurrency-safe log sink: server goroutines keep writing
// while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, s.b.Len())
	copy(out, s.b.Bytes())
	return out
}

// traceIDs extracts the distinct non-empty "trace" attribute values from a
// JSON log stream.
func traceIDs(t *testing.T, data []byte) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if id, ok := rec["trace"].(string); ok && id != "" {
			out[id] = true
		}
	}
	return out
}

// serveTraced starts a served wallet owned by ownerName at addr with a
// debug-level JSON logger, returning the wallet and its log sink.
func serveTraced(t *testing.T, e *env, addr, ownerName string) (*wallet.Wallet, *syncBuf) {
	t.Helper()
	buf := &syncBuf{}
	o := obs.New(obs.NewLogger(buf, slog.LevelDebug, true), obs.NewRegistry())
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir, Obs: o})
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		t.Fatal(err)
	}
	s := remote.Serve(w, ln)
	t.Cleanup(s.Close)
	return w, buf
}

// TestTraceIDPropagatesAcrossWallets runs a two-wallet chain discovery and
// asserts the whole operation — the local agent's span, wallet A's request
// log, and wallet B's request log — shares exactly one trace ID.
func TestTraceIDPropagatesAcrossWallets(t *testing.T) {
	e := newEnv(t, "A", "B", "User", "Server")
	wa, bufA := serveTraced(t, e, "wallet.a", "A")
	wb, bufB := serveTraced(t, e, "wallet.b", "B")

	tagA := e.tag("wallet.a", core.SubjectSearch, core.ObjectNone)
	tagB := e.tag("wallet.b", core.SubjectSearch, core.ObjectNone)

	// d1: local, object-tagged to wallet.a where the chain continues.
	parsed, err := core.ParseDelegation("[User -> A.member] A", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.ObjectTag = &tagA
	d1, err := core.Issue(e.id("A"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}

	// d2: at wallet.a, object-tagged to wallet.b.
	parsed, err = core.ParseDelegation("[A.member -> B.mid] B", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &tagA
	parsed.Template.ObjectTag = &tagB
	d2, err := core.Issue(e.id("B"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Publish(d2); err != nil {
		t.Fatal(err)
	}

	// d3: at wallet.b, completes the chain.
	parsed, err = core.ParseDelegation("[B.mid -> B.guest] B", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &tagB
	d3, err := core.Issue(e.id("B"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.Publish(d3); err != nil {
		t.Fatal(err)
	}

	// The local agent, its own wallet instrumented too.
	localBuf := &syncBuf{}
	o := obs.New(obs.NewLogger(localBuf, slog.LevelDebug, true), obs.NewRegistry())
	local := wallet.New(wallet.Config{Owner: e.id("Server"), Clock: e.clk, Directory: e.dir, Obs: o})
	agent := NewAgent(Config{Local: local, Dialer: e.net.Dialer(e.id("Server"))})
	t.Cleanup(agent.Close)
	if err := local.Publish(d1); err != nil {
		t.Fatal(err)
	}
	agent.Learn(d1)

	var stats Stats
	proof, err := agent.Discover(context.Background(), wallet.Query{
		Subject: e.subject("User"),
		Object:  e.role("B.guest"),
	}, Auto, &stats)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if proof.Len() != 3 {
		t.Fatalf("proof length = %d, want 3", proof.Len())
	}
	if stats.WalletsContacted != 2 {
		t.Fatalf("wallets contacted = %d, want 2", stats.WalletsContacted)
	}

	// The agent minted exactly one trace ID, visible in its own span log.
	localIDs := traceIDs(t, localBuf.Bytes())
	if len(localIDs) != 1 {
		t.Fatalf("local log has %d trace IDs, want 1: %v", len(localIDs), localIDs)
	}
	var tid string
	for id := range localIDs {
		tid = id
	}

	// The audit records land after the response is sent; give each server a
	// moment to flush before asserting.
	deadline := time.Now().Add(2 * time.Second)
	var idsA, idsB map[string]bool
	for {
		idsA = traceIDs(t, bufA.Bytes())
		idsB = traceIDs(t, bufB.Bytes())
		if (len(idsA) > 0 && len(idsB) > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for name, ids := range map[string]map[string]bool{"wallet.a": idsA, "wallet.b": idsB} {
		if len(ids) != 1 || !ids[tid] {
			t.Errorf("%s logged trace IDs %v, want exactly {%s}", name, ids, tid)
		}
	}
}

// TestDiscoverHonorsCallerTraceID checks a caller-supplied trace ID is used
// as-is instead of minting a new one.
func TestDiscoverHonorsCallerTraceID(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Server")
	localBuf := &syncBuf{}
	o := obs.New(obs.NewLogger(localBuf, slog.LevelDebug, true), nil)
	local := wallet.New(wallet.Config{Owner: e.id("Server"), Clock: e.clk, Directory: e.dir, Obs: o})
	agent := NewAgent(Config{Local: local, Dialer: e.net.Dialer(e.id("Server"))})
	t.Cleanup(agent.Close)

	if err := local.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	const want = "feedface00000001"
	if _, err := agent.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
		TraceID: want,
	}, Auto, nil); err != nil {
		t.Fatal(err)
	}
	ids := traceIDs(t, localBuf.Bytes())
	if len(ids) != 1 || !ids[want] {
		t.Fatalf("trace IDs = %v, want exactly {%s}", ids, want)
	}
}

// TestDiscoveryMetrics checks the agent mirrors search effort into its
// registry even when the caller passes nil stats.
func TestDiscoveryMetrics(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Mark", "Sheila", "Maria", "AirNetServer")
	cs := setupCaseStudy(t, e)

	reg := obs.NewRegistry()
	agent := NewAgent(Config{
		Local:  cs.serverWallet,
		Dialer: e.net.Dialer(e.id("AirNetServer")),
		Obs:    obs.New(nil, reg),
	})
	t.Cleanup(agent.Close)
	agent.Learn(cs.d1)

	if _, err := agent.Discover(context.Background(), cs.query, Auto, nil); err != nil {
		t.Fatalf("discover: %v", err)
	}
	s := reg.Snapshot()
	if got := s.Counters["drbac_discovery_total"]; got != 1 {
		t.Errorf("drbac_discovery_total = %d, want 1", got)
	}
	if got := s.Counters["drbac_discovery_found_total"]; got != 1 {
		t.Errorf("drbac_discovery_found_total = %d, want 1", got)
	}
	if s.Counters["drbac_discovery_remote_queries_total"] == 0 {
		t.Error("remote queries not counted")
	}
	if got := s.Counters["drbac_discovery_wallets_contacted_total"]; got != 2 {
		t.Errorf("wallets contacted = %d, want 2", got)
	}
	if s.Counters["drbac_discovery_delegations_fetched_total"] == 0 {
		t.Error("fetched delegations not counted")
	}
	if h := s.Histograms["drbac_discovery_seconds"]; h.Count != 1 {
		t.Errorf("discovery latency observations = %d, want 1", h.Count)
	}
}
