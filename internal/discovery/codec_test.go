package discovery

import (
	"context"
	"encoding/json"
	"testing"

	"drbac/internal/core"
	"drbac/internal/graph"
	"drbac/internal/remote"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// serveCodec is env.serve with an explicit wire-codec policy on the
// listener, for building mixed-codec coalitions.
func (e *env) serveCodec(addr, ownerName string, pol transport.CodecPolicy) *wallet.Wallet {
	e.t.Helper()
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir})
	ln, err := e.net.ListenCodec(addr, e.id(ownerName), pol)
	if err != nil {
		e.t.Fatal(err)
	}
	s := remote.Serve(w, ln)
	e.t.Cleanup(s.Close)
	return w
}

// codecCoalition builds the §5 three-wallet chain once, with per-wallet
// codec policies, and returns a discover function that runs the full chain
// discovery through a fresh agent dialing under the given policy. Nonces
// and signatures are fixed at publish time, so proofs assembled by
// different agents over the same coalition are comparable byte-for-byte.
func codecCoalition(t *testing.T, bigISP, airNet transport.CodecPolicy) func(agentPol transport.CodecPolicy) *core.Proof {
	t.Helper()
	e := newEnv(t, "BigISP", "AirNet", "Mark", "Sheila", "Maria", "AirNetServer")
	bigISPWallet := e.serveCodec("wallet.bigisp", "BigISP", bigISP)
	airNetWallet := e.serveCodec("wallet.airnet", "AirNet", airNet)

	bigISPMemberTag := e.tag("wallet.bigisp", core.SubjectSearch, core.ObjectNone)
	airNetMemberTag := e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone)

	parsed, err := core.ParseDelegation("[Maria -> BigISP.member] BigISP", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.ObjectTag = &bigISPMemberTag
	d1, err := core.Issue(e.id("BigISP"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}

	d3 := e.deleg("[Sheila -> AirNet.mktg] AirNet")
	d4 := e.deleg("[AirNet.mktg -> AirNet.member'] AirNet")
	sup, err := core.NewProof(core.ProofStep{Delegation: d3}, core.ProofStep{Delegation: d4})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err = core.ParseDelegation(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100] Sheila", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &bigISPMemberTag
	parsed.Template.ObjectTag = &airNetMemberTag
	d2, err := core.Issue(e.id("Sheila"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := bigISPWallet.Publish(d2, sup); err != nil {
		t.Fatal(err)
	}
	parsed, err = core.ParseDelegation(
		"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &airNetMemberTag
	d5, err := core.Issue(e.id("AirNet"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := airNetWallet.Publish(d5); err != nil {
		t.Fatal(err)
	}

	return func(agentPol transport.CodecPolicy) *core.Proof {
		t.Helper()
		agent, serverWallet := e.agent("AirNetServer", Config{
			Dialer: e.net.DialerCodec(e.id("AirNetServer"), agentPol),
		})
		if err := serverWallet.Publish(d1); err != nil {
			t.Fatal(err)
		}
		agent.Learn(d1)
		proof, err := agent.Discover(context.Background(), wallet.Query{
			Subject: e.subject("Maria"),
			Object:  e.role("AirNet.access"),
		}, Auto, nil)
		if err != nil {
			t.Fatalf("chain discovery failed: %v", err)
		}
		if err := proof.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
			t.Fatalf("discovered proof does not validate: %v", err)
		}
		return proof
	}
}

// marshalProof renders a proof for byte comparison.
func marshalProof(t *testing.T, p *core.Proof) string {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrossCodecChainDiscoveryByteIdentical is the end-to-end compatibility
// gate CI runs: the same three-wallet chain discovery (§5) executed through
// an all-JSON agent, a strict-binary agent, and an auto agent must assemble
// byte-identical proofs from the same coalition.
func TestCrossCodecChainDiscoveryByteIdentical(t *testing.T) {
	jsonOnly := transport.CodecPolicy{Advertise: []string{transport.CodecJSON}}
	auto := transport.CodecPolicy{}
	strictBinary := transport.CodecPolicy{Require: transport.CodecBinary}

	discover := codecCoalition(t, auto, auto)
	want := marshalProof(t, discover(jsonOnly))
	for name, pol := range map[string]transport.CodecPolicy{
		"strict-binary": strictBinary,
		"auto":          auto,
	} {
		if got := marshalProof(t, discover(pol)); got != want {
			t.Errorf("proof over %s agent differs from all-JSON agent:\n%s\nvs\n%s", name, got, want)
		}
	}
}

// TestMixedCodecCoalitionByteIdentical repeats the chain discovery over a
// mixed coalition — BigISP's home wallet speaks only JSON while AirNet's
// prefers binary — so one discovery crosses both codecs hop by hop. The
// assembled proof must still match an all-JSON agent's byte-for-byte.
func TestMixedCodecCoalitionByteIdentical(t *testing.T) {
	jsonOnly := transport.CodecPolicy{Advertise: []string{transport.CodecJSON}}
	auto := transport.CodecPolicy{}

	discover := codecCoalition(t, jsonOnly, auto)
	want := marshalProof(t, discover(jsonOnly))
	if got := marshalProof(t, discover(auto)); got != want {
		t.Errorf("proof over mixed-codec hops differs from all-JSON:\n%s\nvs\n%s", got, want)
	}
}

// TestMixedCodecPeersNegotiatePerConnection checks that one server accepts
// JSON and binary clients side by side: negotiation is per connection, not
// per process.
func TestMixedCodecPeersNegotiatePerConnection(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria")
	w := e.serveCodec("wallet.bigisp", "BigISP", transport.CodecPolicy{})
	d := e.deleg("[Maria -> BigISP.member] BigISP")
	if err := w.Publish(d); err != nil {
		t.Fatal(err)
	}

	jc, err := remote.Dial(context.Background(),
		e.net.DialerCodec(e.id("Mark"), transport.CodecPolicy{Advertise: []string{transport.CodecJSON}}),
		"wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	bc, err := remote.Dial(context.Background(),
		e.net.DialerCodec(e.id("Maria"), transport.CodecPolicy{Require: transport.CodecBinary}),
		"wallet.bigisp")
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	if got := jc.WireCodec(); got != transport.CodecJSON {
		t.Errorf("json-only client negotiated %q", got)
	}
	if got := bc.WireCodec(); got != transport.CodecBinary {
		t.Errorf("binary-requiring client negotiated %q", got)
	}

	// Both clients must see the same delegation, and proofs fetched over
	// each must re-marshal identically.
	var bodies []string
	for _, c := range []*remote.Client{jc, bc} {
		p, err := c.QueryDirect(context.Background(),
			e.subject("Maria"), e.role("BigISP.member"), nil, graph.Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, marshalProof(t, p))
	}
	if bodies[0] != bodies[1] {
		t.Errorf("proof differs across codecs:\njson:   %s\nbinary: %s", bodies[0], bodies[1])
	}
}
