package discovery

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env wires identities, a fake clock, and an in-memory network of wallets.
type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
	clk *clock.Fake
	net *transport.MemNetwork
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
	}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) role(text string) core.Role {
	e.t.Helper()
	r, err := core.ParseRole(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return r
}

func (e *env) subject(text string) core.Subject {
	e.t.Helper()
	s, err := core.ParseSubject(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return s
}

// serve starts a served wallet owned by ownerName at addr.
func (e *env) serve(addr, ownerName string) *wallet.Wallet {
	e.t.Helper()
	w := wallet.New(wallet.Config{Owner: e.id(ownerName), Clock: e.clk, Directory: e.dir})
	ln, err := e.net.Listen(addr, e.id(ownerName))
	if err != nil {
		e.t.Fatal(err)
	}
	s := remote.Serve(w, ln)
	e.t.Cleanup(s.Close)
	return w
}

func (e *env) tag(home string, subjectFlag core.SubjectFlag, objectFlag core.ObjectFlag) core.DiscoveryTag {
	return core.DiscoveryTag{
		Home:    home,
		TTL:     30 * time.Second,
		Subject: subjectFlag,
		Object:  objectFlag,
	}
}

// agent builds a discovery agent over a fresh local wallet owned by owner.
func (e *env) agent(owner string, cfg Config) (*Agent, *wallet.Wallet) {
	e.t.Helper()
	local := wallet.New(wallet.Config{Owner: e.id(owner), Clock: e.clk, Directory: e.dir})
	cfg.Local = local
	if cfg.Dialer == nil {
		cfg.Dialer = e.net.Dialer(e.id(owner))
	}
	a := NewAgent(cfg)
	e.t.Cleanup(a.Close)
	return a, local
}

// --- The Figure 2 / Table 3 case study ------------------------------------

// caseStudy holds the wallets and delegations of §5.
type caseStudy struct {
	bigISPWallet, airNetWallet, serverWallet *wallet.Wallet
	agent                                    *Agent
	d1, d2, d5                               *core.Delegation
	query                                    wallet.Query
	bw, storage, hours                       core.AttributeRef
}

// setupCaseStudy reproduces the §5 initial state: delegation (1) handed to
// the server by Maria's laptop; delegation (2) with its support proof
// ((3),(4)) in BigISP's home wallet; delegation (5) in AirNet's home wallet.
func setupCaseStudy(t *testing.T, e *env) *caseStudy {
	t.Helper()
	cs := &caseStudy{}
	cs.bigISPWallet = e.serve("wallet.bigisp", "BigISP")
	cs.airNetWallet = e.serve("wallet.airnet", "AirNet")

	airNetID := e.id("AirNet").ID()
	cs.bw = core.AttributeRef{Namespace: airNetID, Name: "BW"}
	cs.storage = core.AttributeRef{Namespace: airNetID, Name: "storage"}
	cs.hours = core.AttributeRef{Namespace: airNetID, Name: "hours"}

	// Tags: all subjects searchable from subject ('S'), per §5.
	bigISPMemberTag := e.tag("wallet.bigisp", core.SubjectSearch, core.ObjectNone)
	airNetMemberTag := e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone)

	// Delegation (1): [Maria -> BigISP.member] BigISP, tagged so the
	// receiving server knows where to search from BigISP.member.
	parsed, err := core.ParseDelegation("[Maria -> BigISP.member] BigISP", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.ObjectTag = &bigISPMemberTag
	cs.d1, err = core.Issue(e.id("BigISP"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}

	// Delegations (3) and (4): Sheila's authority.
	d3 := e.deleg("[Sheila -> AirNet.mktg] AirNet")
	d4 := e.deleg("[AirNet.mktg -> AirNet.member'] AirNet")
	sup, err := core.NewProof(core.ProofStep{Delegation: d3}, core.ProofStep{Delegation: d4})
	if err != nil {
		t.Fatal(err)
	}

	// Delegation (2): the coalition, third-party by Sheila, modulated.
	parsed, err = core.ParseDelegation(
		"[BigISP.member -> AirNet.member with AirNet.BW <= 100 and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila",
		e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &bigISPMemberTag
	parsed.Template.ObjectTag = &airNetMemberTag
	cs.d2, err = core.Issue(e.id("Sheila"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.bigISPWallet.Publish(cs.d2, sup); err != nil {
		t.Fatalf("publish (2) at BigISP home: %v", err)
	}

	// Delegation (5): [AirNet.member -> AirNet.access with AirNet.BW <= 200].
	parsed, err = core.ParseDelegation(
		"[AirNet.member -> AirNet.access with AirNet.BW <= 200] AirNet", e.dir)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Template.SubjectTag = &airNetMemberTag
	cs.d5, err = core.Issue(e.id("AirNet"), parsed.Template, e.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.airNetWallet.Publish(cs.d5); err != nil {
		t.Fatalf("publish (5) at AirNet home: %v", err)
	}

	// The AirNet server's local wallet and discovery agent.
	cs.agent, cs.serverWallet = e.agent("AirNetServer", Config{})

	// Step 1: Maria's software presents delegation (1); the server stores
	// it and learns its tags.
	if err := cs.serverWallet.Publish(cs.d1); err != nil {
		t.Fatalf("publish (1) at server: %v", err)
	}
	cs.agent.Learn(cs.d1)

	cs.query = wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}
	return cs
}

func TestFigure2Steps(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Mark", "Sheila", "Maria", "AirNetServer")
	cs := setupCaseStudy(t, e)

	var stats Stats
	proof, err := cs.agent.Discover(context.Background(), cs.query, Auto, &stats)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}

	// The discovered proof chains (1), (2), (5).
	if proof.Len() != 3 {
		t.Fatalf("proof length = %d, want 3", proof.Len())
	}
	if err := proof.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatalf("proof invalid: %v", err)
	}

	// Steps 3 and 4: one subject query at BigISP's home, then a direct
	// query at AirNet's home.
	if len(stats.Trace) < 2 {
		t.Fatalf("trace too short: %+v", stats.Trace)
	}
	first, last := stats.Trace[0], stats.Trace[len(stats.Trace)-1]
	if first.Wallet != "wallet.bigisp" || first.Kind != "subject" {
		t.Fatalf("step 3 trace = %+v", first)
	}
	if last.Wallet != "wallet.airnet" || last.Kind != "direct" {
		t.Fatalf("step 4 trace = %+v", last)
	}
	if stats.WalletsContacted != 2 {
		t.Fatalf("wallets contacted = %d, want 2", stats.WalletsContacted)
	}

	// Step 5: the fetched delegations are cached locally with TTLs.
	if !cs.serverWallet.Contains(cs.d2.ID()) || !cs.serverWallet.Contains(cs.d5.ID()) {
		t.Fatal("fetched delegations not inserted into local wallet")
	}
	if cs.serverWallet.CachedCount() == 0 {
		t.Fatal("no TTL cache entries recorded")
	}

	// §5's attribute outcomes: BW 100 (<= 200), storage 30 (= 50-20),
	// hours 18 (= 60*0.3).
	ag, err := proof.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(cs.bw, math.Inf(1)); got != 100 {
		t.Errorf("BW = %v, want 100", got)
	}
	if got := ag.Value(cs.storage, 50); got != 30 {
		t.Errorf("storage = %v, want 30", got)
	}
	if got := ag.Value(cs.hours, 60); got != 18 {
		t.Errorf("hours = %v, want 18", got)
	}
}

func TestFigure2MonitoringAndRevocation(t *testing.T) {
	e := newEnv(t, "BigISP", "AirNet", "Mark", "Sheila", "Maria", "AirNetServer")
	cs := setupCaseStudy(t, e)

	proof, err := cs.agent.Discover(context.Background(), cs.query, Auto, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Step 6: wrap in a proof monitor; bridge inter-wallet subscriptions.
	events := make(chan wallet.MonitorEvent, 4)
	mon, err := cs.serverWallet.MonitorProof(cs.query, proof,
		func(ev wallet.MonitorEvent) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	cancel, err := cs.agent.Bridge(context.Background(), proof)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Sheila tears down the coalition at BigISP's home wallet; the push
	// must invalidate the server's monitor.
	if err := cs.bigISPWallet.Revoke(cs.d2.ID(), e.id("Sheila").ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != wallet.MonitorInvalidated {
			t.Fatalf("monitor event = %v", ev.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revocation did not reach the server monitor")
	}
	if mon.Valid() {
		t.Fatal("monitor still valid after coalition revocation")
	}
}

func TestDiscoverLocalHit(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Server")
	a, local := e.agent("Server", Config{})
	if err := local.Publish(e.deleg("[Maria -> BigISP.member] BigISP")); err != nil {
		t.Fatal(err)
	}
	var stats Stats
	p, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, Auto, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || stats.RemoteQueries != 0 {
		t.Fatalf("local hit should not touch the network: %+v", stats)
	}
}

func TestDiscoverNoTagsNoProof(t *testing.T) {
	e := newEnv(t, "BigISP", "Maria", "Server")
	a, _ := e.agent("Server", Config{})
	_, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.member"),
	}, Auto, nil)
	if !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestDiscoverReverse(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	// The home wallet knows the whole chain to AirNet.access.
	if err := home.Publish(e.deleg("[Maria -> AirNet.member] AirNet")); err != nil {
		t.Fatal(err)
	}
	if err := home.Publish(e.deleg("[AirNet.member -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}
	a, local := e.agent("Server", Config{})
	// Only an object tag for AirNet.access is known: reverse search.
	a.RegisterTag(e.subject("AirNet.access"), e.tag("wallet.airnet", core.SubjectNone, core.ObjectSearch))
	var stats Stats
	p, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}, Auto, &stats)
	if err != nil {
		t.Fatalf("reverse discover: %v", err)
	}
	if err := p.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatal(err)
	}
	if !local.Contains(p.Steps[0].Delegation.ID()) {
		t.Fatal("reverse-fetched delegations not inserted")
	}
	if len(stats.Trace) == 0 || stats.Trace[0].Kind != "direct" {
		t.Fatalf("trace = %+v", stats.Trace)
	}
}

func TestDiscoverModeRestriction(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	if err := home.Publish(e.deleg("[Maria -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}
	build := func() *Agent {
		a, _ := e.agent("Server", Config{})
		// Tag says: searchable from subject only.
		a.RegisterTag(e.subject("Maria"), e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone))
		return a
	}
	q := wallet.Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")}

	if _, err := build().Discover(context.Background(), q, ForwardOnly, nil); err != nil {
		t.Fatalf("forward-only: %v", err)
	}
	// Reverse-only cannot use the subject tag (no object tag known for
	// AirNet.access), so it must fail.
	if _, err := build().Discover(context.Background(), q, ReverseOnly, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("reverse-only should fail, got %v", err)
	}
}

func TestDiscoverAutoRespectsTagFlags(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	if err := home.Publish(e.deleg("[Maria -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}
	a, _ := e.agent("Server", Config{})
	// Tag present but with '-' subject flag: Auto must not search from it.
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.airnet", core.SubjectNone, core.ObjectNone))
	q := wallet.Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")}
	if _, err := a.Discover(context.Background(), q, Auto, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("auto mode should respect '-' flags, got %v", err)
	}
	// ForwardOnly overrides the flag (the §4.2.3 experiments rely on this).
	if _, err := a.Discover(context.Background(), q, ForwardOnly, nil); err != nil {
		t.Fatalf("forward-only override: %v", err)
	}
}

func TestVerifyHomes(t *testing.T) {
	e := newEnv(t, "AirNet", "WalletOp", "Maria", "Server")
	// The home wallet is operated by WalletOp.
	home := wallet.New(wallet.Config{Owner: e.id("WalletOp"), Clock: e.clk, Directory: e.dir})
	ln, err := e.net.Listen("wallet.airnet", e.id("WalletOp"))
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(home, ln)
	t.Cleanup(srv.Close)
	if err := home.Publish(e.deleg("[Maria -> AirNet.access] AirNet")); err != nil {
		t.Fatal(err)
	}

	authTag := core.DiscoveryTag{
		Home:     "wallet.airnet",
		AuthRole: e.role("AirNet.wallet"),
		TTL:      30 * time.Second,
		Subject:  core.SubjectSearch,
		Object:   core.ObjectNone,
	}
	q := wallet.Query{Subject: e.subject("Maria"), Object: e.role("AirNet.access")}

	// Without the authorization grant, a verifying agent refuses the home.
	a1, _ := e.agent("Server", Config{VerifyHomes: true})
	a1.RegisterTag(e.subject("Maria"), authTag)
	if _, err := a1.Discover(context.Background(), q, Auto, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("unauthorized home should yield no proof, got %v", err)
	}

	// Grant WalletOp the authorization role; a fresh agent now succeeds.
	if err := home.Publish(e.deleg("[WalletOp -> AirNet.wallet] AirNet")); err != nil {
		t.Fatal(err)
	}
	a2, _ := e.agent("Server", Config{VerifyHomes: true})
	a2.RegisterTag(e.subject("Maria"), authTag)
	if _, err := a2.Discover(context.Background(), q, Auto, nil); err != nil {
		t.Fatalf("authorized home: %v", err)
	}
}

func TestDiscoverWithConstraints(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	if err := home.Publish(e.deleg("[Maria -> AirNet.access with AirNet.BW <= 10] AirNet")); err != nil {
		t.Fatal(err)
	}
	a, _ := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone))
	bw := core.AttributeRef{Namespace: e.id("AirNet").ID(), Name: "BW"}
	q := wallet.Query{
		Subject:     e.subject("Maria"),
		Object:      e.role("AirNet.access"),
		Constraints: []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 50}},
	}
	if _, err := a.Discover(context.Background(), q, Auto, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("BW=10 must not satisfy minimum 50, got %v", err)
	}
}

func TestDiscoverMultiHopTagLearning(t *testing.T) {
	// A chain spread over three wallets, where each hop's tag is learned
	// from the previous hop's object annotation.
	e := newEnv(t, "A", "B", "C", "M", "Server")
	wa := e.serve("wallet.a", "A")
	wb := e.serve("wallet.b", "B")
	wc := e.serve("wallet.c", "C")

	tagA := e.tag("wallet.a", core.SubjectSearch, core.ObjectNone)
	tagB := e.tag("wallet.b", core.SubjectSearch, core.ObjectNone)
	tagC := e.tag("wallet.c", core.SubjectSearch, core.ObjectNone)

	issueTagged := func(text string, subjTag, objTag *core.DiscoveryTag, w *wallet.Wallet) *core.Delegation {
		parsed, err := core.ParseDelegation(text, e.dir)
		if err != nil {
			t.Fatal(err)
		}
		parsed.Template.SubjectTag = subjTag
		parsed.Template.ObjectTag = objTag
		var issuer *core.Identity
		for _, id := range e.ids {
			if id.ID() == parsed.Issuer.ID() {
				issuer = id
			}
		}
		d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		if w != nil {
			if err := w.Publish(d); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	d1 := issueTagged("[M -> A.x] A", nil, &tagA, nil) // handed to server
	issueTagged("[A.x -> B.y] B", &tagA, &tagB, wa)    // in A's wallet
	issueTagged("[B.y -> C.z] C", &tagB, &tagC, wb)    // in B's wallet
	issueTagged("[C.z -> C.goal] C", &tagC, nil, wc)   // in C's wallet

	a, local := e.agent("Server", Config{})
	if err := local.Publish(d1); err != nil {
		t.Fatal(err)
	}
	a.Learn(d1)

	var stats Stats
	p, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("M"),
		Object:  e.role("C.goal"),
	}, Auto, &stats)
	if err != nil {
		t.Fatalf("multi-hop discover: %v (trace %+v)", err, stats.Trace)
	}
	if p.Len() != 4 {
		t.Fatalf("proof length = %d, want 4", p.Len())
	}
	if stats.WalletsContacted != 3 {
		t.Fatalf("wallets contacted = %d, want 3", stats.WalletsContacted)
	}
	if stats.Rounds < 3 {
		t.Fatalf("rounds = %d, want >= 3 (one per hop)", stats.Rounds)
	}
}

func TestBridgeRenewKeepsCacheFresh(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	d := e.deleg("[Maria -> AirNet.access] AirNet")
	if err := home.InsertCached(d, nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	a, local := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone))
	p, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}, Auto, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel, err := a.Bridge(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Observe the renewal arriving locally through the wallet's own
	// subscription registry, then confirm the cache stays fresh past the
	// original TTL.
	renewed := make(chan struct{}, 1)
	unsub := local.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind == subs.Renewed {
			select {
			case renewed <- struct{}{}:
			default:
			}
		}
	})
	defer unsub()

	e.clk.Advance(25 * time.Second)
	if !home.RenewCached(d.ID(), time.Hour) {
		t.Fatal("home renew failed")
	}
	select {
	case <-renewed:
	case <-time.After(2 * time.Second):
		t.Fatal("renewal did not propagate to the local wallet")
	}
	e.clk.Advance(10 * time.Second) // t=35s, past the original 30s TTL
	if n := local.SweepStaleCache(); n != 0 {
		t.Fatalf("renewed entry swept: %d", n)
	}
	if !local.Contains(d.ID()) {
		t.Fatal("renewed cache entry missing")
	}
}

func fmtTrace(tr []TraceEvent) string {
	out := ""
	for _, ev := range tr {
		out += fmt.Sprintf("r%d %s %s(%s)=%d; ", ev.Round, ev.Wallet, ev.Kind, ev.Node, ev.Results)
	}
	return out
}

// Bidirectional meet-in-the-middle at the discovery level: tags cover the
// subject side of the chain and the object side, but neither direction
// alone reaches across the untagged middle. Auto mode must combine both
// frontiers (§4.2.3 "whenever allowed by the values of discovery tags").
func TestDiscoverBidirectionalMeetInMiddle(t *testing.T) {
	e := newEnv(t, "A", "B", "M", "Server")
	wa := e.serve("wallet.a", "A")
	wb := e.serve("wallet.b", "B")

	// Chain: M -> A.x -> A.y -> B.z -> B.goal.
	// Subject side: A's wallet holds [M -> A.x] and [A.x -> A.y]; only A.x
	// carries a subject-search tag, and A.y's links live in A's wallet too
	// so the forward frontier stalls at A.y (no tag for it).
	// Object side: B's wallet holds [A.y -> B.z] and [B.z -> B.goal]; B.z
	// and B.goal carry object-search tags.
	tagA := e.tag("wallet.a", core.SubjectSearch, core.ObjectNone)
	tagBz := e.tag("wallet.b", core.SubjectNone, core.ObjectSearch)
	tagBgoal := e.tag("wallet.b", core.SubjectNone, core.ObjectSearch)

	issue := func(text string, subjTag, objTag *core.DiscoveryTag) *core.Delegation {
		t.Helper()
		parsed, err := core.ParseDelegation(text, e.dir)
		if err != nil {
			t.Fatal(err)
		}
		parsed.Template.SubjectTag = subjTag
		parsed.Template.ObjectTag = objTag
		var issuer *core.Identity
		for _, id := range e.ids {
			if id.ID() == parsed.Issuer.ID() {
				issuer = id
			}
		}
		d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d1 := issue("[M -> A.x] A", nil, &tagA)
	if err := wa.Publish(issue("[A.x -> A.y] A", &tagA, nil)); err != nil {
		t.Fatal(err)
	}
	if err := wb.Publish(issue("[A.y -> B.z] B", nil, &tagBz)); err != nil {
		t.Fatal(err)
	}
	if err := wb.Publish(issue("[B.z -> B.goal] B", &tagBz, &tagBgoal)); err != nil {
		t.Fatal(err)
	}

	build := func() *Agent {
		a, local := e.agent("Server", Config{})
		if err := local.Publish(d1); err != nil {
			t.Fatal(err)
		}
		a.Learn(d1)
		a.RegisterTag(e.subject("B.goal"), tagBgoal)
		return a
	}
	q := wallet.Query{Subject: e.subject("M"), Object: e.role("B.goal")}

	// Forward alone stalls at A.y; reverse alone stalls at A.y from the
	// other side (no subject link for it without the forward half).
	if _, err := build().Discover(context.Background(), q, ForwardOnly, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("forward-only should stall, got %v", err)
	}
	if _, err := build().Discover(context.Background(), q, ReverseOnly, nil); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("reverse-only should stall, got %v", err)
	}
	// Auto combines both frontiers and completes.
	var stats Stats
	p, err := build().Discover(context.Background(), q, Auto, &stats)
	if err != nil {
		t.Fatalf("bidirectional discovery failed: %v (trace: %s)", err, fmtTrace(stats.Trace))
	}
	if p.Len() != 4 {
		t.Fatalf("proof length = %d, want 4", p.Len())
	}
	if err := p.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatal(err)
	}
}

// §4.2.3 "modulated attribute ranges": the agent adjusts query constraints
// by the locally accumulated modifiers, so a remote wallet prunes
// continuations the chain can no longer afford — nothing useless is
// fetched.
func TestDiscoverModulatedRangesPruneRemoteFetches(t *testing.T) {
	e := newEnv(t, "A", "B", "M", "Server")
	home := e.serve("wallet.b", "B")
	// Continuation at B's wallet: generous on its own (BW <= 80)...
	if err := home.Publish(e.deleg("[A.x -> B.goal with B.BW <= 80] B")); err != nil {
		t.Fatal(err)
	}

	a, local := e.agent("Server", Config{})
	// ...but the local prefix has already capped B.BW at 40.
	if err := local.Publish(e.deleg("[M -> A.x with B.BW <= 40] A")); err != nil {
		t.Fatal(err)
	}
	a.RegisterTag(e.subject("A.x"), e.tag("wallet.b", core.SubjectSearch, core.ObjectNone))

	bw := core.AttributeRef{Namespace: e.id("B").ID(), Name: "BW"}
	q := wallet.Query{
		Subject:     e.subject("M"),
		Object:      e.role("B.goal"),
		Constraints: []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 50}},
	}
	var stats Stats
	if _, err := a.Discover(context.Background(), q, Auto, &stats); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("combined chain caps BW at 40 < 50; want ErrNoProof, got %v", err)
	}
	if stats.DelegationsFetched != 0 {
		t.Fatalf("remote pruning failed: fetched %d delegations", stats.DelegationsFetched)
	}

	// With an affordable requirement the same setup succeeds.
	q.Constraints[0].Minimum = 30
	a2, local2 := e.agent("Server", Config{})
	if err := local2.Publish(e.deleg("[M -> A.x with B.BW <= 40] A")); err != nil {
		t.Fatal(err)
	}
	a2.RegisterTag(e.subject("A.x"), e.tag("wallet.b", core.SubjectSearch, core.ObjectNone))
	p, err := a2.Discover(context.Background(), q, Auto, nil)
	if err != nil {
		t.Fatalf("affordable query failed: %v", err)
	}
	ag, err := p.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Value(bw, math.Inf(1)); got != 40 {
		t.Fatalf("BW = %v, want 40", got)
	}
}

// The §6 registry-audit alternative: store-required discovery flags let a
// relying party check that every link of a proof is on the public record
// at its home wallet, exposing unauditable re-delegation.
func TestAuditRegistry(t *testing.T) {
	e := newEnv(t, "BigISP", "Mark", "Maria", "Server")
	home := e.serve("wallet.bigisp", "BigISP")

	storeTag := e.tag("wallet.bigisp", core.SubjectStore, core.ObjectNone)
	issueTagged := func(text string, subjTag *core.DiscoveryTag) *core.Delegation {
		t.Helper()
		parsed, err := core.ParseDelegation(text, e.dir)
		if err != nil {
			t.Fatal(err)
		}
		parsed.Template.SubjectTag = subjTag
		var issuer *core.Identity
		for _, id := range e.ids {
			if id.ID() == parsed.Issuer.ID() {
				issuer = id
			}
		}
		d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	// Registered link: stored at the home wallet as the flag demands.
	registered := issueTagged("[BigISP.member -> BigISP.reader] BigISP", &storeTag)
	if err := home.Publish(registered); err != nil {
		t.Fatal(err)
	}
	// Off-registry link: the flag demands storage, but it was never
	// published home — the unauditable re-delegation.
	offRegistry := issueTagged("[Maria -> BigISP.member] BigISP", &storeTag)
	// Untagged link: no registry requirement.
	plain := e.deleg("[BigISP.reader -> BigISP.archive] BigISP")

	a, local := e.agent("Server", Config{})
	for _, d := range []*core.Delegation{registered, offRegistry, plain} {
		if err := local.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	proof, err := local.QueryDirect(wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("BigISP.archive"),
	})
	if err != nil {
		t.Fatal(err)
	}

	findings, err := a.AuditRegistry(context.Background(), proof)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[core.DelegationID]AuditFinding, len(findings))
	for _, f := range findings {
		byID[f.Delegation] = f
	}
	if f := byID[registered.ID()]; !f.Required || !f.Registered {
		t.Errorf("registered link audited as %+v", f)
	}
	if f := byID[offRegistry.ID()]; !f.Required || f.Registered {
		t.Errorf("off-registry link audited as %+v", f)
	}
	if f := byID[plain.ID()]; f.Required {
		t.Errorf("untagged link should not require registration: %+v", f)
	}
}

// §4.2.1 cache coherence via periodic re-confirmation: KeepFresh renews
// cached credentials the home still holds and drops ones it no longer does.
func TestKeepFresh(t *testing.T) {
	e := newEnv(t, "AirNet", "Maria", "Server")
	home := e.serve("wallet.airnet", "AirNet")
	d := e.deleg("[Maria -> AirNet.access] AirNet")
	if err := home.Publish(d); err != nil {
		t.Fatal(err)
	}
	a, local := e.agent("Server", Config{})
	a.RegisterTag(e.subject("Maria"), e.tag("wallet.airnet", core.SubjectSearch, core.ObjectNone))
	if _, err := a.Discover(context.Background(), wallet.Query{
		Subject: e.subject("Maria"),
		Object:  e.role("AirNet.access"),
	}, Auto, nil); err != nil {
		t.Fatal(err)
	}

	renewed := make(chan struct{}, 8)
	unsub := local.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind == subs.Renewed {
			select {
			case renewed <- struct{}{}:
			default:
			}
		}
	})
	defer unsub()

	stop := a.KeepFresh(10 * time.Second)
	defer stop()

	// Tick the refresher until a renewal lands (the loop registers its
	// timer asynchronously, so nudge the fake clock repeatedly).
	gotRenewal := false
	for deadline := time.Now().Add(3 * time.Second); !gotRenewal; {
		e.clk.Advance(15 * time.Second)
		select {
		case <-renewed:
			gotRenewal = true
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("refresh did not renew the cached credential")
			}
		}
	}
	if n := local.SweepStaleCache(); n != 0 {
		t.Fatalf("renewed credential went stale: %d", n)
	}

	// The home drops the credential (e.g. revoked while our subscription
	// was down); the next refresh removes the local copy.
	if err := home.Revoke(d.ID(), e.id("AirNet").ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for local.Contains(d.ID()) {
		e.clk.Advance(15 * time.Second)
		if time.Now().After(deadline) {
			t.Fatal("refresh never dropped the home-revoked credential")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !local.IsRevoked(d.ID()) {
		t.Fatal("dropped credential not marked revoked locally")
	}
	stop()
	stop() // idempotent
}
