package graph

import (
	"fmt"
	"testing"

	"drbac/internal/core"
)

// buildChainGraph returns a graph holding one long chain plus `noise`
// distractor edges hanging off every chain node.
func buildChainGraph(tb testing.TB, length, noise int) (*Graph, core.Subject, core.Role) {
	tb.Helper()
	owner, err := core.IdentityFromSeed("owner", seedBytes(1))
	if err != nil {
		tb.Fatal(err)
	}
	user, err := core.IdentityFromSeed("user", seedBytes(2))
	if err != nil {
		tb.Fatal(err)
	}
	g := New()
	role := func(name string) core.Role { return core.NewRole(owner.ID(), name) }
	add := func(tmpl core.Template) {
		d, err := core.Issue(owner, tmpl, testNow)
		if err != nil {
			tb.Fatal(err)
		}
		g.Add(d, nil)
	}
	userEnt := user.Entity()
	add(core.Template{
		Subject:       core.SubjectEntity(user.ID()),
		SubjectEntity: &userEnt,
		Object:        role("n0"),
	})
	for i := 0; i < length; i++ {
		add(core.Template{
			Subject: core.SubjectRole(role(fmt.Sprintf("n%d", i))),
			Object:  role(fmt.Sprintf("n%d", i+1)),
		})
		for j := 0; j < noise; j++ {
			add(core.Template{
				Subject: core.SubjectRole(role(fmt.Sprintf("n%d", i))),
				Object:  role(fmt.Sprintf("dead%d_%d", i, j)),
			})
		}
	}
	return g, core.SubjectEntity(user.ID()), role(fmt.Sprintf("n%d", length))
}

func seedBytes(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

// A wallet-scale sanity check: thousands of edges, deep chains, bounded
// enumeration — everything stays correct and terminates.
func TestGraphAtScale(t *testing.T) {
	const length, noise = 30, 20 // 30 chain hops, 600 distractors
	g, subject, goal := buildChainGraph(t, length, noise)
	if g.Len() != 1+length*(1+noise) {
		t.Fatalf("graph size = %d", g.Len())
	}
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(subject, goal, Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		if p.Len() != length+1 {
			t.Fatalf("direction %v: chain length %d, want %d", dirn, p.Len(), length+1)
		}
		if err := p.Validate(core.ValidateOptions{At: testNow, MaxDepth: 64}); err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
	}
	proofs := g.EnumerateFrom(subject, Options{At: testNow, MaxProofs: 100})
	if len(proofs) != 100 {
		t.Fatalf("enumeration = %d proofs, want capped at 100", len(proofs))
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	owner, err := core.IdentityFromSeed("owner", seedBytes(1))
	if err != nil {
		b.Fatal(err)
	}
	dels := make([]*core.Delegation, 1000)
	for i := range dels {
		d, err := core.Issue(owner, core.Template{
			Subject: core.SubjectRole(core.NewRole(owner.ID(), fmt.Sprintf("s%d", i))),
			Object:  core.NewRole(owner.ID(), fmt.Sprintf("o%d", i)),
		}, testNow)
		if err != nil {
			b.Fatal(err)
		}
		dels[i] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New()
		for _, d := range dels {
			g.Add(d, nil)
		}
	}
}

func BenchmarkFindDirectDeepChain(b *testing.B) {
	for _, length := range []int{4, 16, 30} {
		g, subject, goal := buildChainGraph(b, length, 4)
		b.Run(fmt.Sprintf("len%d", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.FindDirect(subject, goal, Options{At: testNow}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEnumerateFromWideFanout(b *testing.B) {
	g, subject, _ := buildChainGraph(b, 10, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.EnumerateFrom(subject, Options{At: testNow, MaxProofs: 200}); len(got) == 0 {
			b.Fatal("no proofs")
		}
	}
}

// BenchmarkFindDirectParallel measures read scaling across the sharded
// index: concurrent searches over a mid-size chain graph.
func BenchmarkFindDirectParallel(b *testing.B) {
	g, subject, goal := buildChainGraph(b, 16, 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.FindDirect(subject, goal, Options{At: testNow}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFindDirectParallelWithWriter runs the same parallel search while
// one goroutine continuously churns unrelated edges — with per-shard locks
// and snapshot reads, writers only stall searches touching their shards.
func BenchmarkFindDirectParallelWithWriter(b *testing.B) {
	g, subject, goal := buildChainGraph(b, 16, 4)
	owner, err := core.IdentityFromSeed("churn", seedBytes(3))
	if err != nil {
		b.Fatal(err)
	}
	churn := make([]*core.Delegation, 256)
	for i := range churn {
		d, err := core.Issue(owner, core.Template{
			Subject: core.SubjectRole(core.NewRole(owner.ID(), fmt.Sprintf("cs%d", i))),
			Object:  core.NewRole(owner.ID(), fmt.Sprintf("co%d", i)),
		}, testNow)
		if err != nil {
			b.Fatal(err)
		}
		churn[i] = d
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := churn[i%len(churn)]
			g.Add(d, nil)
			g.Remove(d.ID())
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.FindDirect(subject, goal, Options{At: testNow}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
