package graph

import (
	"errors"
	"testing"

	"drbac/internal/core"
)

// Depth-limited delegations (the §6 extension) must be honoured during
// search, not just at validation: a violating path may not shadow a valid
// alternative.

func TestSearchRespectsDepthLimit(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	// Limited route: M -> A.short (depth:1) -> A.mid -> A.goal (3 steps,
	// limit allows only 1 after the first).
	g.Add(e.deleg("[M -> A.short] A <depth:1>"), nil)
	g.Add(e.deleg("[A.short -> A.mid] A"), nil)
	g.Add(e.deleg("[A.mid -> A.goal] A"), nil)

	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		_, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{At: testNow, Direction: dirn})
		if !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("direction %v: depth-violating chain accepted: %v", dirn, err)
		}
	}

	// An unlimited alternative route must be found even though the limited
	// route is explored first.
	g.Add(e.deleg("[M -> A.free] A"), nil)
	g.Add(e.deleg("[A.free -> A.mid2] A"), nil)
	g.Add(e.deleg("[A.mid2 -> A.goal] A"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: alternative route not found: %v", dirn, err)
		}
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("direction %v: returned proof invalid: %v", dirn, err)
		}
		if p.Steps[0].Delegation.Object.Name != "free" {
			t.Fatalf("direction %v: picked the depth-violating route", dirn)
		}
	}
}

func TestSearchAllowsChainWithinDepthLimit(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.x] A <depth:2>"), nil)
	g.Add(e.deleg("[A.x -> A.y] A <depth:1>"), nil)
	g.Add(e.deleg("[A.y -> A.goal] A"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		if p.Len() != 3 {
			t.Fatalf("direction %v: Len = %d", dirn, p.Len())
		}
	}
}

func TestEnumerateRespectsDepthLimit(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.x] A <depth:1>"), nil)
	g.Add(e.deleg("[A.x -> A.y] A"), nil)
	g.Add(e.deleg("[A.y -> A.z] A"), nil)

	from := g.EnumerateFrom(e.subject("M"), Options{At: testNow})
	for _, p := range from {
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("EnumerateFrom emitted invalid proof %v: %v", p, err)
		}
	}
	// Expect M=>x and M=>y (one step past the limited edge), but not M=>z.
	if len(from) != 2 {
		t.Fatalf("EnumerateFrom = %d proofs, want 2", len(from))
	}

	to := g.EnumerateTo(e.role("A.z"), Options{At: testNow})
	for _, p := range to {
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("EnumerateTo emitted invalid proof %v: %v", p, err)
		}
	}
	// Expect y=>z and x=>y=>z, but not the three-step M chain.
	if len(to) != 2 {
		t.Fatalf("EnumerateTo = %d proofs, want 2", len(to))
	}
}
