// Package graph implements the wallet-internal delegation graph: a directed
// multigraph whose vertices are subjects (entities or roles) and whose edges
// are delegations, supporting the efficient enumeration of delegation chains
// between any subject and object that §4.1 requires.
//
// Searches prune on valued-attribute monotonicity (§4.2.3): once a partial
// chain's aggregated modifiers violate a query constraint, no extension can
// satisfy it, so the branch is abandoned.
//
// Storage is sharded: vertices and delegation IDs hash onto a fixed set of
// shards, each guarded by its own RWMutex. Mutations lock only the shards
// owning the touched subject, object, and ID keys, and publish fresh edge
// slices (copy-on-write), so searches iterate immutable snapshots without
// holding any lock across the traversal — concurrent queries proceed fully
// in parallel with each other and with publications and revocations of
// unrelated credentials. A search overlapping a mutation may observe the
// graph mid-update (e.g. an edge indexed by subject but not yet by object);
// callers re-validate candidate proofs against expiry and revocation, so a
// transient read costs a failed validation, never a wrong answer.
package graph

import (
	"fmt"
	"sync"
	"time"

	"drbac/internal/core"
)

// edge is one stored delegation plus the support proofs published with it.
type edge struct {
	d       *core.Delegation
	support []*core.Proof
}

// shardCount is the number of index shards. A fixed power of two keeps the
// hash-to-shard mapping a mask and comfortably exceeds typical core counts.
const shardCount = 32

// shard is one lock domain of the index. The three maps are independent
// key spaces; a delegation's subject, object, and ID may land on different
// shards.
type shard struct {
	mu sync.RWMutex
	// bySubject indexes outgoing edges by the delegation subject.
	bySubject map[core.Subject][]*edge
	// byObject indexes incoming edges by the delegation object.
	byObject map[core.Role][]*edge
	byID     map[core.DelegationID]*edge
}

// Graph is a concurrency-safe sharded delegation graph. The zero value is
// not usable; construct with New.
type Graph struct {
	shards [shardCount]shard
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	for i := range g.shards {
		s := &g.shards[i]
		s.bySubject = make(map[core.Subject][]*edge)
		s.byObject = make(map[core.Role][]*edge)
		s.byID = make(map[core.DelegationID]*edge)
	}
	return g
}

// FNV-1a constants for shard hashing.
const (
	fnvOffset uint32 = 2166136261
	fnvPrime  uint32 = 16777619
)

func hashString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime
	}
	return h
}

func hashRole(h uint32, r core.Role) uint32 {
	h = hashString(h, string(r.Namespace))
	h = hashString(h, r.Name)
	h ^= uint32(r.Tick)
	h *= fnvPrime
	if r.Attr {
		h ^= 1
	}
	h *= fnvPrime
	h ^= uint32(r.Op)
	h *= fnvPrime
	return h
}

func (g *Graph) subjectShard(s core.Subject) *shard {
	h := hashString(fnvOffset, string(s.Entity))
	h = hashRole(h, s.Role)
	return &g.shards[h%shardCount]
}

func (g *Graph) objectShard(r core.Role) *shard {
	return &g.shards[hashRole(fnvOffset, r)%shardCount]
}

func (g *Graph) idShard(id core.DelegationID) *shard {
	return &g.shards[hashString(fnvOffset, string(id))%shardCount]
}

// edgesFrom returns the out-edges of subject. The result is an immutable
// snapshot (mutations publish fresh slices), so callers iterate it without
// holding the shard lock.
func (g *Graph) edgesFrom(s core.Subject) []*edge {
	sh := g.subjectShard(s)
	sh.mu.RLock()
	list := sh.bySubject[s]
	sh.mu.RUnlock()
	return list
}

// edgesTo returns the in-edges of object, with the same snapshot semantics
// as edgesFrom.
func (g *Graph) edgesTo(r core.Role) []*edge {
	sh := g.objectShard(r)
	sh.mu.RLock()
	list := sh.byObject[r]
	sh.mu.RUnlock()
	return list
}

// Add inserts a delegation and its accompanying support proofs. Adding the
// same delegation twice is a no-op. The graph performs no validation; the
// wallet validates before insertion.
func (g *Graph) Add(d *core.Delegation, support []*core.Proof) {
	id := d.ID()
	e := &edge{d: d, support: support}

	ids := g.idShard(id)
	ids.mu.Lock()
	if _, ok := ids.byID[id]; ok {
		ids.mu.Unlock()
		return
	}
	ids.byID[id] = e
	ids.mu.Unlock()

	ss := g.subjectShard(d.Subject)
	ss.mu.Lock()
	list := ss.bySubject[d.Subject]
	// Cap the capacity so append always allocates: readers holding the old
	// snapshot never see the backing array mutate.
	ss.bySubject[d.Subject] = append(list[:len(list):len(list)], e)
	ss.mu.Unlock()

	os := g.objectShard(d.Object)
	os.mu.Lock()
	list = os.byObject[d.Object]
	os.byObject[d.Object] = append(list[:len(list):len(list)], e)
	os.mu.Unlock()
}

// Remove deletes a delegation by ID, reporting whether it was present.
func (g *Graph) Remove(id core.DelegationID) bool {
	ids := g.idShard(id)
	ids.mu.Lock()
	e, ok := ids.byID[id]
	if ok {
		delete(ids.byID, id)
	}
	ids.mu.Unlock()
	if !ok {
		return false
	}

	ss := g.subjectShard(e.d.Subject)
	ss.mu.Lock()
	if list := dropEdge(ss.bySubject[e.d.Subject], e); len(list) == 0 {
		delete(ss.bySubject, e.d.Subject)
	} else {
		ss.bySubject[e.d.Subject] = list
	}
	ss.mu.Unlock()

	os := g.objectShard(e.d.Object)
	os.mu.Lock()
	if list := dropEdge(os.byObject[e.d.Object], e); len(list) == 0 {
		delete(os.byObject, e.d.Object)
	} else {
		os.byObject[e.d.Object] = list
	}
	os.mu.Unlock()
	return true
}

// dropEdge returns a fresh slice without e (copy-on-write: the input slice
// may be a snapshot concurrently iterated by a search).
func dropEdge(list []*edge, e *edge) []*edge {
	for i, cand := range list {
		if cand != e {
			continue
		}
		out := make([]*edge, 0, len(list)-1)
		out = append(out, list[:i]...)
		return append(out, list[i+1:]...)
	}
	return list
}

// Get returns a stored delegation and its support proofs.
func (g *Graph) Get(id core.DelegationID) (*core.Delegation, []*core.Proof, bool) {
	sh := g.idShard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.byID[id]
	if !ok {
		return nil, nil, false
	}
	return e.d, e.support, true
}

// Contains reports whether the delegation is stored.
func (g *Graph) Contains(id core.DelegationID) bool {
	sh := g.idShard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.byID[id]
	return ok
}

// Len returns the number of stored delegations.
func (g *Graph) Len() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.byID)
		sh.mu.RUnlock()
	}
	return n
}

// All returns every stored delegation (order unspecified).
func (g *Graph) All() []*core.Delegation {
	var out []*core.Delegation
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for _, e := range sh.byID {
			out = append(out, e.d)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Direction selects the search strategy for direct queries (§4.2.3).
type Direction int

const (
	// Forward searches subject-towards-object.
	Forward Direction = iota + 1
	// Reverse searches object-towards-subject.
	Reverse
	// Bidirectional expands both frontiers and meets in the middle,
	// reducing the number of paths considered from ~b^d to ~2·b^(d/2).
	Bidirectional
)

// Stats accumulates search-effort counters for the §4.2.3 experiments.
type Stats struct {
	// EdgesExplored counts delegation edges the search touched.
	EdgesExplored int
	// NodesVisited counts search states expanded.
	NodesVisited int
	// Pruned counts branches abandoned due to attribute constraints.
	Pruned int
}

// Add folds other's counters into s — the wallet uses it to mirror
// per-search effort into its long-lived metrics registry.
func (s *Stats) Add(other Stats) {
	s.EdgesExplored += other.EdgesExplored
	s.NodesVisited += other.NodesVisited
	s.Pruned += other.Pruned
}

// Options parameterizes searches.
type Options struct {
	// At is the evaluation instant; expired delegations are invisible.
	At time.Time
	// Constraints restrict acceptable proofs by aggregated attribute value.
	Constraints []core.Constraint
	// DisablePruning turns off monotonicity pruning (baseline for the
	// §4.2.3 pruning experiment). Constraints are then only checked on
	// complete chains.
	DisablePruning bool
	// MaxDepth bounds chain length; 0 means DefaultMaxDepth.
	MaxDepth int
	// MaxProofs bounds enumeration results; 0 means DefaultMaxProofs.
	MaxProofs int
	// Direction selects the direct-search strategy; 0 means Forward.
	Direction Direction
	// Stats, if non-nil, accumulates search effort.
	Stats *Stats
}

// DefaultMaxDepth bounds chain length during search.
const DefaultMaxDepth = 32

// DefaultMaxProofs bounds subject/object enumeration results.
const DefaultMaxProofs = 1024

func (o Options) maxDepth() int {
	if o.MaxDepth <= 0 {
		return DefaultMaxDepth
	}
	return o.MaxDepth
}

func (o Options) maxProofs() int {
	if o.MaxProofs <= 0 {
		return DefaultMaxProofs
	}
	return o.MaxProofs
}

func (o Options) bumpNodes() {
	if o.Stats != nil {
		o.Stats.NodesVisited++
	}
}

func (o Options) bumpEdges() {
	if o.Stats != nil {
		o.Stats.EdgesExplored++
	}
}

func (o Options) bumpPruned() {
	if o.Stats != nil {
		o.Stats.Pruned++
	}
}

// usable reports whether an edge may appear in a proof at instant At.
func usable(e *edge, at time.Time) bool {
	return at.IsZero() || !e.d.Expired(at)
}

// FindDirect searches for one proof subject ⇒ object satisfying the
// constraints. It returns core.ErrNoProof when none exists.
func (g *Graph) FindDirect(subject core.Subject, object core.Role, opts Options) (*core.Proof, error) {
	if err := subject.Validate(); err != nil {
		return nil, fmt.Errorf("direct query subject: %w", err)
	}
	if err := object.Validate(); err != nil {
		return nil, fmt.Errorf("direct query object: %w", err)
	}
	switch opts.Direction {
	case Reverse:
		return g.findReverse(subject, object, opts)
	case Bidirectional:
		return g.findBidirectional(subject, object, opts)
	default:
		return g.findForward(subject, object, opts)
	}
}

// findForward enumerates simple chains depth-first from the subject.
func (g *Graph) findForward(subject core.Subject, object core.Role, opts Options) (*core.Proof, error) {
	var (
		path    []*edge
		onPath  = make(map[core.Subject]bool)
		found   *core.Proof
		maxDeep = opts.maxDepth()
	)
	var dfs func(node core.Subject, ag core.Aggregate, budget int) bool
	dfs = func(node core.Subject, ag core.Aggregate, budget int) bool {
		opts.bumpNodes()
		if len(path) >= maxDeep {
			return false
		}
		for _, e := range g.edgesFrom(node) {
			if !usable(e, opts.At) {
				continue
			}
			opts.bumpEdges()
			// Depth-limit budget: taking this edge consumes one step from
			// every limit already on the path; the edge may add its own.
			nextBudget := budget - 1
			if nextBudget < 0 {
				continue // an earlier delegation forbids this extension
			}
			if e.d.DepthLimit > 0 && e.d.DepthLimit < nextBudget {
				nextBudget = e.d.DepthLimit
			}
			next := core.SubjectRole(e.d.Object)
			if onPath[next] {
				continue
			}
			nextAg := ag.Clone()
			if err := nextAg.AddAll(e.d.Attributes); err != nil {
				continue // operator conflict: chain unusable
			}
			if !opts.DisablePruning && !core.SatisfiedAll(opts.Constraints, nextAg) {
				opts.bumpPruned()
				continue
			}
			path = append(path, e)
			if e.d.Object == object && core.SatisfiedAll(opts.Constraints, nextAg) {
				found = proofFromEdges(path)
				path = path[:len(path)-1]
				return true
			}
			onPath[next] = true
			done := dfs(next, nextAg, nextBudget)
			delete(onPath, next)
			path = path[:len(path)-1]
			if done {
				return true
			}
		}
		return false
	}
	onPath[subject] = true
	if dfs(subject, core.NewAggregate(), maxDeep) {
		return found, nil
	}
	return nil, core.ErrNoProof
}

// findReverse enumerates simple chains depth-first from the object towards
// the subject.
func (g *Graph) findReverse(subject core.Subject, object core.Role, opts Options) (*core.Proof, error) {
	var (
		path    []*edge // reversed: path[0] is the edge closest to the object
		onPath  = make(map[core.Role]bool)
		found   *core.Proof
		maxDeep = opts.maxDepth()
	)
	var dfs func(node core.Role) bool
	dfs = func(node core.Role) bool {
		opts.bumpNodes()
		if len(path) >= maxDeep {
			return false
		}
		for _, e := range g.edgesTo(node) {
			if !usable(e, opts.At) {
				continue
			}
			opts.bumpEdges()
			path = append(path, e)
			// Reverse depth pruning: this edge will have len(path)-1 steps
			// after it in the final chain.
			if e.d.DepthLimit > 0 && e.d.DepthLimit < len(path)-1 {
				path = path[:len(path)-1]
				continue
			}
			if e.d.Subject == subject {
				chain := make([]*edge, len(path))
				for i, pe := range path {
					chain[len(path)-1-i] = pe
				}
				if p := proofFromEdges(chain); chainSatisfies(p, opts) {
					found = p
					path = path[:len(path)-1]
					return true
				}
			}
			// Continue only through role subjects: entity subjects
			// terminate chains (§3.1.1).
			if !e.d.Subject.IsEntity() && !onPath[e.d.Subject.Role] {
				// Monotonicity pruning in reverse direction: the suffix
				// aggregate from here to the object already bounds the
				// final value from above.
				if !opts.DisablePruning && !suffixSatisfiable(path, opts) {
					opts.bumpPruned()
					path = path[:len(path)-1]
					continue
				}
				onPath[e.d.Subject.Role] = true
				done := dfs(e.d.Subject.Role)
				delete(onPath, e.d.Subject.Role)
				if done {
					path = path[:len(path)-1]
					return true
				}
			}
			path = path[:len(path)-1]
		}
		return false
	}
	onPath[object] = true
	if dfs(object) {
		return found, nil
	}
	return nil, core.ErrNoProof
}

// suffixSatisfiable checks whether the reversed partial chain (suffix of the
// final chain) can still satisfy the constraints: since modifiers only
// lower values, the suffix aggregate is an upper bound on the final value.
func suffixSatisfiable(path []*edge, opts Options) bool {
	ag := core.NewAggregate()
	for _, e := range path {
		if err := ag.AddAll(e.d.Attributes); err != nil {
			return false
		}
	}
	return core.SatisfiedAll(opts.Constraints, ag)
}

func chainSatisfies(p *core.Proof, opts Options) bool {
	ag, err := p.Aggregate()
	if err != nil {
		return false
	}
	return core.SatisfiedAll(opts.Constraints, ag) && chainDepthOK(p.Steps)
}

// chainDepthOK enforces per-delegation depth limits (the §6 transitive-
// trust extension): no step may be followed by more steps than its
// DepthLimit allows.
func chainDepthOK(steps []core.ProofStep) bool {
	for i, st := range steps {
		limit := st.Delegation.DepthLimit
		if limit > 0 && len(steps)-1-i > limit {
			return false
		}
	}
	return true
}

// edgeDepthOK is chainDepthOK over the search-internal edge slice.
func edgeDepthOK(chain []*edge) bool {
	for i, e := range chain {
		limit := e.d.DepthLimit
		if limit > 0 && len(chain)-1-i > limit {
			return false
		}
	}
	return true
}

// findBidirectional alternates breadth-first expansion from both ends and
// joins frontiers when they meet (§4.2.3).
func (g *Graph) findBidirectional(subject core.Subject, object core.Role, opts Options) (*core.Proof, error) {
	maxDeep := opts.maxDepth()

	// parentF[n] is the edge that reached subject-side node n; parentR[r]
	// is the edge that reached object-side role r.
	parentF := map[core.Subject]*edge{subject: nil}
	parentR := map[core.Role]*edge{object: nil}
	frontF := []core.Subject{subject}
	frontR := []core.Role{object}

	// meet attempts to assemble and constraint-check a chain through node.
	meet := func(node core.Role) *core.Proof {
		fwd := collectForward(parentF, core.SubjectRole(node))
		rev := collectReverse(parentR, node)
		chain := append(fwd, rev...)
		if len(chain) == 0 || len(chain) > maxDeep {
			return nil
		}
		p := proofFromEdges(chain)
		if !chainSatisfies(p, opts) {
			return nil
		}
		return p
	}

	// The subject itself may already satisfy a degenerate meet only when a
	// chain exists, so loop expanding the smaller frontier.
	for steps := 0; steps < 2*maxDeep && (len(frontF) > 0 || len(frontR) > 0); steps++ {
		expandForward := len(frontF) > 0 && (len(frontF) <= len(frontR) || len(frontR) == 0)
		if expandForward {
			var next []core.Subject
			for _, node := range frontF {
				opts.bumpNodes()
				for _, e := range g.edgesFrom(node) {
					if !usable(e, opts.At) {
						continue
					}
					opts.bumpEdges()
					to := core.SubjectRole(e.d.Object)
					if _, seen := parentF[to]; seen {
						continue
					}
					parentF[to] = e
					if _, hit := parentR[e.d.Object]; hit {
						if p := meet(e.d.Object); p != nil {
							return p, nil
						}
					}
					next = append(next, to)
				}
			}
			frontF = next
			continue
		}
		var next []core.Role
		for _, node := range frontR {
			opts.bumpNodes()
			for _, e := range g.edgesTo(node) {
				if !usable(e, opts.At) {
					continue
				}
				opts.bumpEdges()
				// Object-side frontier grows through role subjects; an
				// entity subject is a potential chain start.
				if e.d.Subject == subject {
					if _, hit := parentR[node]; hit {
						fwd := []*edge{e}
						rev := collectReverse(parentR, node)
						p := proofFromEdges(append(fwd, rev...))
						if chainSatisfies(p, opts) && len(p.Steps) <= maxDeep {
							return p, nil
						}
					}
				}
				if e.d.Subject.IsEntity() {
					continue
				}
				from := e.d.Subject.Role
				if _, seen := parentR[from]; seen {
					continue
				}
				parentR[from] = e
				if _, hit := parentF[core.SubjectRole(from)]; hit {
					if p := meet(from); p != nil {
						return p, nil
					}
				}
				next = append(next, from)
			}
		}
		frontR = next
	}
	return nil, core.ErrNoProof
}

// collectForward walks parent pointers back from node to the search subject
// and returns the edges in chain order.
func collectForward(parent map[core.Subject]*edge, node core.Subject) []*edge {
	var out []*edge
	for {
		e := parent[node]
		if e == nil {
			break
		}
		out = append(out, e)
		node = e.d.Subject
	}
	// Reverse into chain order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// collectReverse walks parent pointers forward from role to the search
// object and returns the edges in chain order.
func collectReverse(parent map[core.Role]*edge, role core.Role) []*edge {
	var out []*edge
	for {
		e := parent[role]
		if e == nil {
			break
		}
		out = append(out, e)
		role = e.d.Object
	}
	return out
}

// proofFromEdges assembles a proof from an ordered edge chain.
func proofFromEdges(chain []*edge) *core.Proof {
	steps := make([]core.ProofStep, len(chain))
	for i, e := range chain {
		steps[i] = core.ProofStep{Delegation: e.d, Support: e.support}
	}
	return &core.Proof{
		Subject: chain[0].d.Subject,
		Object:  chain[len(chain)-1].d.Object,
		Steps:   steps,
	}
}

// EnumerateFrom answers a subject query (§4.1): every simple-chain proof of
// the form subject ⇒ * that does not violate the constraints, up to
// MaxProofs.
func (g *Graph) EnumerateFrom(subject core.Subject, opts Options) []*core.Proof {
	var (
		out     []*core.Proof
		path    []*edge
		onPath  = map[core.Subject]bool{subject: true}
		maxDeep = opts.maxDepth()
		limit   = opts.maxProofs()
	)
	var dfs func(node core.Subject, ag core.Aggregate)
	dfs = func(node core.Subject, ag core.Aggregate) {
		opts.bumpNodes()
		if len(out) >= limit || len(path) >= maxDeep {
			return
		}
		for _, e := range g.edgesFrom(node) {
			if !usable(e, opts.At) {
				continue
			}
			opts.bumpEdges()
			next := core.SubjectRole(e.d.Object)
			if onPath[next] {
				continue
			}
			nextAg := ag.Clone()
			if err := nextAg.AddAll(e.d.Attributes); err != nil {
				continue
			}
			if !opts.DisablePruning && !core.SatisfiedAll(opts.Constraints, nextAg) {
				opts.bumpPruned()
				continue
			}
			path = append(path, e)
			if core.SatisfiedAll(opts.Constraints, nextAg) && edgeDepthOK(path) {
				out = append(out, proofFromEdges(path))
			}
			if len(out) < limit {
				onPath[next] = true
				dfs(next, nextAg)
				delete(onPath, next)
			}
			path = path[:len(path)-1]
			if len(out) >= limit {
				return
			}
		}
	}
	dfs(subject, core.NewAggregate())
	return out
}

// EnumerateTo answers an object query (§4.1): every simple-chain proof of
// the form * ⇒ object that does not violate the constraints, up to
// MaxProofs.
func (g *Graph) EnumerateTo(object core.Role, opts Options) []*core.Proof {
	var (
		out     []*core.Proof
		path    []*edge // reversed
		onPath  = map[core.Role]bool{object: true}
		maxDeep = opts.maxDepth()
		limit   = opts.maxProofs()
	)
	emit := func() {
		chain := make([]*edge, len(path))
		for i, e := range path {
			chain[len(path)-1-i] = e
		}
		p := proofFromEdges(chain)
		if chainSatisfies(p, opts) {
			out = append(out, p)
		}
	}
	var dfs func(node core.Role)
	dfs = func(node core.Role) {
		opts.bumpNodes()
		if len(out) >= limit || len(path) >= maxDeep {
			return
		}
		for _, e := range g.edgesTo(node) {
			if !usable(e, opts.At) {
				continue
			}
			opts.bumpEdges()
			path = append(path, e)
			if !opts.DisablePruning && !suffixSatisfiable(path, opts) {
				opts.bumpPruned()
				path = path[:len(path)-1]
				continue
			}
			emit()
			if !e.d.Subject.IsEntity() && !onPath[e.d.Subject.Role] && len(out) < limit {
				onPath[e.d.Subject.Role] = true
				dfs(e.d.Subject.Role)
				delete(onPath, e.d.Subject.Role)
			}
			path = path[:len(path)-1]
			if len(out) >= limit {
				return
			}
		}
	}
	dfs(object)
	return out
}
