package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"drbac/internal/core"
)

// randomGraph builds a random delegation DAG-ish graph (cycles allowed)
// over nRoles roles in one namespace, with one entity subject, and returns
// the graph plus the query endpoints.
func randomGraph(t *testing.T, rng *rand.Rand, nRoles, nEdges int) (*Graph, core.Subject, []core.Role, core.AttributeRef) {
	t.Helper()
	e := newEnv(t, "Owner", "User")
	g := New()
	owner := e.id("Owner")
	user := e.id("User")
	bw := core.AttributeRef{Namespace: owner.ID(), Name: "BW"}

	roles := make([]core.Role, nRoles)
	for i := range roles {
		roles[i] = core.NewRole(owner.ID(), fmt.Sprintf("r%d", i))
	}
	issue := func(subject core.Subject, subjEnt *core.Entity, object core.Role, withAttr bool) {
		tmpl := core.Template{Subject: subject, SubjectEntity: subjEnt, Object: object}
		if withAttr {
			tmpl.Attributes = []core.AttributeSetting{{
				Attr: bw, Op: core.OpMinimum, Value: float64(10 + rng.Intn(200)),
			}}
		}
		d, err := core.Issue(owner, tmpl, testNow)
		if err != nil {
			t.Fatal(err)
		}
		g.Add(d, nil)
	}

	// Entity fan-out: a few edges from the user.
	userEnt := user.Entity()
	for i := 0; i < 1+rng.Intn(3); i++ {
		issue(core.SubjectEntity(user.ID()), &userEnt, roles[rng.Intn(nRoles)], rng.Intn(2) == 0)
	}
	// Random role-to-role edges.
	for i := 0; i < nEdges; i++ {
		from := roles[rng.Intn(nRoles)]
		to := roles[rng.Intn(nRoles)]
		if from == to {
			continue
		}
		issue(core.SubjectRole(from), nil, to, rng.Intn(3) == 0)
	}
	return g, core.SubjectEntity(user.ID()), roles, bw
}

// Property: on random graphs without constraints, the three search
// directions agree on whether a proof exists, and every returned proof
// validates.
func TestPropertyDirectionsAgreeOnExistence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, subject, roles, _ := randomGraph(t, rng, 6+rng.Intn(6), 10+rng.Intn(20))
		object := roles[rng.Intn(len(roles))]

		results := make(map[Direction]error)
		for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
			p, err := g.FindDirect(subject, object, Options{At: testNow, Direction: dirn})
			results[dirn] = err
			if err == nil {
				if verr := p.Validate(core.ValidateOptions{At: testNow}); verr != nil {
					t.Logf("seed %d: %v returned invalid proof: %v", seed, dirn, verr)
					return false
				}
			} else if !errors.Is(err, core.ErrNoProof) {
				t.Logf("seed %d: %v unexpected error: %v", seed, dirn, err)
				return false
			}
		}
		fwdFound := results[Forward] == nil
		for _, dirn := range []Direction{Reverse, Bidirectional} {
			if (results[dirn] == nil) != fwdFound {
				t.Logf("seed %d: existence disagreement fwd=%v %v=%v",
					seed, results[Forward], dirn, results[dirn])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: under constraints, forward and reverse (both exhaustive
// simple-path searches) agree on existence, and any proof either returns
// satisfies the constraints. Bidirectional is an optimization that may
// miss niche constrained paths (the paper notes repeat queries may be
// needed, §4.2.3), so it is only required to return valid proofs.
func TestPropertyConstrainedSearchSound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, subject, roles, bw := randomGraph(t, rng, 6+rng.Intn(6), 10+rng.Intn(20))
		object := roles[rng.Intn(len(roles))]
		cons := []core.Constraint{{
			Attr: bw, Base: math.Inf(1), Minimum: float64(rng.Intn(150)),
		}}

		check := func(dirn Direction) (bool, bool) {
			p, err := g.FindDirect(subject, object, Options{
				At: testNow, Direction: dirn, Constraints: cons,
			})
			if err != nil {
				return false, errors.Is(err, core.ErrNoProof)
			}
			if verr := p.Validate(core.ValidateOptions{At: testNow, Constraints: cons}); verr != nil {
				t.Logf("seed %d: %v returned constraint-violating proof: %v", seed, dirn, verr)
				return true, false
			}
			return true, true
		}
		fwdFound, fwdOK := check(Forward)
		revFound, revOK := check(Reverse)
		_, bidiOK := check(Bidirectional)
		if !fwdOK || !revOK || !bidiOK {
			return false
		}
		if fwdFound != revFound {
			t.Logf("seed %d: forward found=%v but reverse found=%v", seed, fwdFound, revFound)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every proof emitted by subject/object enumeration validates.
func TestPropertyEnumerationsValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, subject, roles, _ := randomGraph(t, rng, 5+rng.Intn(5), 8+rng.Intn(15))
		for _, p := range g.EnumerateFrom(subject, Options{At: testNow}) {
			if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
				t.Logf("seed %d: EnumerateFrom invalid: %v", seed, err)
				return false
			}
		}
		object := roles[rng.Intn(len(roles))]
		for _, p := range g.EnumerateTo(object, Options{At: testNow}) {
			if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
				t.Logf("seed %d: EnumerateTo invalid: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
