package graph

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"drbac/internal/core"
)

var testNow = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// env provides identities and helpers for graph tests.
type env struct {
	t   *testing.T
	ids map[string]*core.Identity
	dir *core.MemDirectory
}

func newEnv(t *testing.T, names ...string) *env {
	t.Helper()
	e := &env{t: t, ids: make(map[string]*core.Identity), dir: core.NewDirectory()}
	for i, name := range names {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		copy(seed[1:], name)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatalf("identity %s: %v", name, err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	return e
}

func (e *env) id(name string) *core.Identity {
	id, ok := e.ids[name]
	if !ok {
		e.t.Fatalf("unknown identity %q", name)
	}
	return id
}

// deleg parses and signs one delegation in the paper syntax.
func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatalf("parse %q: %v", text, err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
			break
		}
	}
	if issuer == nil {
		e.t.Fatalf("no identity for issuer of %q", text)
	}
	d, err := core.Issue(issuer, parsed.Template, testNow)
	if err != nil {
		e.t.Fatalf("issue %q: %v", text, err)
	}
	return d
}

func (e *env) role(text string) core.Role {
	e.t.Helper()
	r, err := core.ParseRole(text, e.dir)
	if err != nil {
		e.t.Fatalf("role %q: %v", text, err)
	}
	return r
}

func (e *env) subject(text string) core.Subject {
	e.t.Helper()
	s, err := core.ParseSubject(text, e.dir)
	if err != nil {
		e.t.Fatalf("subject %q: %v", text, err)
	}
	return s
}

func TestAddRemoveGet(t *testing.T) {
	e := newEnv(t, "A", "B")
	g := New()
	d := e.deleg("[B -> A.reader] A")
	g.Add(d, nil)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Add(d, nil) // idempotent
	if g.Len() != 1 {
		t.Fatalf("duplicate Add changed Len: %d", g.Len())
	}
	got, _, ok := g.Get(d.ID())
	if !ok || got.ID() != d.ID() {
		t.Fatal("Get failed")
	}
	if !g.Contains(d.ID()) {
		t.Fatal("Contains = false")
	}
	if !g.Remove(d.ID()) {
		t.Fatal("Remove = false")
	}
	if g.Remove(d.ID()) {
		t.Fatal("second Remove = true")
	}
	if g.Len() != 0 || g.Contains(d.ID()) {
		t.Fatal("delegation still present after Remove")
	}
	if len(g.All()) != 0 {
		t.Fatal("All() non-empty")
	}
}

func TestFindDirectSingleEdge(t *testing.T) {
	e := newEnv(t, "A", "B")
	g := New()
	g.Add(e.deleg("[B -> A.reader] A"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("B"), e.role("A.reader"), Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		if p.Len() != 1 {
			t.Fatalf("direction %v: Len = %d", dirn, p.Len())
		}
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("direction %v: proof invalid: %v", dirn, err)
		}
	}
}

func TestFindDirectChain(t *testing.T) {
	e := newEnv(t, "A", "B", "C", "M")
	g := New()
	// M -> B.member -> C.guest -> A.reader, mixed namespaces, all
	// self-certified for simplicity.
	g.Add(e.deleg("[M -> B.member] B"), nil)
	g.Add(e.deleg("[B.member -> C.guest] C"), nil)
	g.Add(e.deleg("[C.guest -> A.reader] A"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		if p.Len() != 3 {
			t.Fatalf("direction %v: Len = %d, want 3", dirn, p.Len())
		}
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("direction %v: proof invalid: %v", dirn, err)
		}
	}
}

func TestFindDirectNoProof(t *testing.T) {
	e := newEnv(t, "A", "B", "M")
	g := New()
	g.Add(e.deleg("[M -> B.member] B"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		_, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: testNow, Direction: dirn})
		if !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("direction %v: want ErrNoProof, got %v", dirn, err)
		}
	}
}

func TestFindDirectInvalidQuery(t *testing.T) {
	g := New()
	if _, err := g.FindDirect(core.Subject{}, core.Role{}, Options{}); err == nil {
		t.Fatal("want error for invalid query")
	}
}

func TestEntitySubjectTerminatesChain(t *testing.T) {
	e := newEnv(t, "A", "B", "M")
	g := New()
	// [M -> B.member] and then a delegation granted *to the entity B*, not
	// to the role: the chain must not pass through B's entity grant.
	g.Add(e.deleg("[M -> B.member] B"), nil)
	g.Add(e.deleg("[B -> A.reader] A"), nil) // grants entity B, not B.member
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		_, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: testNow, Direction: dirn})
		if !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("direction %v: entity grant must not chain, got %v", dirn, err)
		}
	}
}

func TestCycleSafety(t *testing.T) {
	e := newEnv(t, "A", "B", "M")
	g := New()
	g.Add(e.deleg("[M -> A.x] A"), nil)
	g.Add(e.deleg("[A.x -> B.y] B"), nil)
	g.Add(e.deleg("[B.y -> A.x] A"), nil) // cycle x <-> y
	g.Add(e.deleg("[B.y -> A.goal] A"), nil)
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{At: testNow, Direction: dirn})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
	}
	// Unreachable object despite cycle: search must terminate.
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		if _, err := g.FindDirect(e.subject("M"), e.role("A.nowhere"), Options{At: testNow, Direction: dirn}); !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("direction %v: want ErrNoProof, got %v", dirn, err)
		}
	}
}

func TestExpiredEdgesInvisible(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.reader] A <expiry:2026-07-06T13:00:00Z>"), nil)
	if _, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: testNow}); err != nil {
		t.Fatalf("before expiry: %v", err)
	}
	late := testNow.Add(2 * time.Hour)
	if _, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: late}); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("after expiry: want ErrNoProof, got %v", err)
	}
}

func TestConstraintSelectsSatisfyingPath(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	// Two paths to A.access: a low-bandwidth one through A.cheap and a
	// high-bandwidth one through A.premium.
	g.Add(e.deleg("[M -> A.cheap with A.BW <= 10] A"), nil)
	g.Add(e.deleg("[A.cheap -> A.access] A"), nil)
	g.Add(e.deleg("[M -> A.premium with A.BW <= 500] A"), nil)
	g.Add(e.deleg("[A.premium -> A.access] A"), nil)
	bw := core.AttributeRef{Namespace: e.id("A").ID(), Name: "BW"}
	cons := []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 100}}
	for _, dirn := range []Direction{Forward, Reverse, Bidirectional} {
		p, err := g.FindDirect(e.subject("M"), e.role("A.access"), Options{
			At: testNow, Constraints: cons, Direction: dirn,
		})
		if err != nil {
			t.Fatalf("direction %v: %v", dirn, err)
		}
		ag, err := p.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		if got := ag.Value(bw, math.Inf(1)); got < 100 {
			t.Fatalf("direction %v: picked path with BW %v", dirn, got)
		}
	}
}

func TestConstraintUnsatisfiableEverywhere(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.cheap with A.BW <= 10] A"), nil)
	g.Add(e.deleg("[A.cheap -> A.access] A"), nil)
	bw := core.AttributeRef{Namespace: e.id("A").ID(), Name: "BW"}
	cons := []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 100}}
	for _, pruning := range []bool{true, false} {
		_, err := g.FindDirect(e.subject("M"), e.role("A.access"), Options{
			At: testNow, Constraints: cons, DisablePruning: !pruning,
		})
		if !errors.Is(err, core.ErrNoProof) {
			t.Fatalf("pruning=%v: want ErrNoProof, got %v", pruning, err)
		}
	}
}

func TestPruningReducesExploredEdges(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	// A wide dead-end forest behind a constraint-violating first hop, plus
	// one satisfying path.
	g.Add(e.deleg("[M -> A.bad with A.BW <= 1] A"), nil)
	for i := 0; i < 20; i++ {
		g.Add(e.deleg(fmt.Sprintf("[A.bad -> A.mid%d] A", i)), nil)
		g.Add(e.deleg(fmt.Sprintf("[A.mid%d -> A.leaf%d] A", i, i)), nil)
	}
	g.Add(e.deleg("[M -> A.good with A.BW <= 100] A"), nil)
	g.Add(e.deleg("[A.good -> A.access] A"), nil)

	bw := core.AttributeRef{Namespace: e.id("A").ID(), Name: "BW"}
	cons := []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 50}}

	var pruned, unpruned Stats
	if _, err := g.FindDirect(e.subject("M"), e.role("A.access"), Options{
		At: testNow, Constraints: cons, Stats: &pruned,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FindDirect(e.subject("M"), e.role("A.access"), Options{
		At: testNow, Constraints: cons, DisablePruning: true, Stats: &unpruned,
	}); err != nil {
		t.Fatal(err)
	}
	if pruned.EdgesExplored >= unpruned.EdgesExplored {
		t.Fatalf("pruning did not help: pruned=%d unpruned=%d",
			pruned.EdgesExplored, unpruned.EdgesExplored)
	}
	if pruned.Pruned == 0 {
		t.Fatal("expected pruned branches to be counted")
	}
}

func TestBidirectionalExploresFewerEdgesOnDeepTrees(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	// Balanced diamond layers: depth 6, branching 3 between layers.
	const depth, branch = 6, 3
	for layer := 0; layer < depth; layer++ {
		for i := 0; i < branch; i++ {
			if layer == 0 {
				g.Add(e.deleg(fmt.Sprintf("[M -> A.l0n%d] A", i)), nil)
				continue
			}
			for j := 0; j < branch; j++ {
				g.Add(e.deleg(fmt.Sprintf("[A.l%dn%d -> A.l%dn%d] A", layer-1, j, layer, i)), nil)
			}
		}
	}
	last := depth - 1
	g.Add(e.deleg(fmt.Sprintf("[A.l%dn0 -> A.goal] A", last)), nil)

	var fwd, bidi Stats
	if _, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{
		At: testNow, Direction: Forward, Stats: &fwd,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FindDirect(e.subject("M"), e.role("A.goal"), Options{
		At: testNow, Direction: Bidirectional, Stats: &bidi,
	}); err != nil {
		t.Fatal(err)
	}
	if bidi.EdgesExplored <= 0 || fwd.EdgesExplored <= 0 {
		t.Fatal("stats not collected")
	}
	t.Logf("forward=%d bidirectional=%d", fwd.EdgesExplored, bidi.EdgesExplored)
}

func TestMaxDepthBoundsSearch(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.r0] A"), nil)
	for i := 0; i < 5; i++ {
		g.Add(e.deleg(fmt.Sprintf("[A.r%d -> A.r%d] A", i, i+1)), nil)
	}
	// Chain of length 6 to reach A.r5.
	if _, err := g.FindDirect(e.subject("M"), e.role("A.r5"), Options{At: testNow, MaxDepth: 3}); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("MaxDepth=3 should not reach depth 6, got %v", err)
	}
	if _, err := g.FindDirect(e.subject("M"), e.role("A.r5"), Options{At: testNow, MaxDepth: 6}); err != nil {
		t.Fatalf("MaxDepth=6 should reach: %v", err)
	}
}

func TestEnumerateFrom(t *testing.T) {
	e := newEnv(t, "A", "B", "M")
	g := New()
	g.Add(e.deleg("[M -> B.member] B"), nil)
	g.Add(e.deleg("[B.member -> A.guest] A"), nil)
	g.Add(e.deleg("[B.member -> A.reader] A"), nil)
	proofs := g.EnumerateFrom(e.subject("M"), Options{At: testNow})
	if len(proofs) != 3 {
		t.Fatalf("EnumerateFrom = %d proofs, want 3 (member, guest, reader)", len(proofs))
	}
	objects := map[string]bool{}
	for _, p := range proofs {
		objects[p.Object.Name] = true
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("proof %v invalid: %v", p.Object, err)
		}
	}
	for _, want := range []string{"member", "guest", "reader"} {
		if !objects[want] {
			t.Errorf("missing proof for object %q", want)
		}
	}
}

func TestEnumerateFromRespectsMaxProofs(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	for i := 0; i < 10; i++ {
		g.Add(e.deleg(fmt.Sprintf("[M -> A.r%d] A", i)), nil)
	}
	proofs := g.EnumerateFrom(e.subject("M"), Options{At: testNow, MaxProofs: 4})
	if len(proofs) != 4 {
		t.Fatalf("MaxProofs=4 returned %d", len(proofs))
	}
}

func TestEnumerateTo(t *testing.T) {
	e := newEnv(t, "A", "B", "M", "N")
	g := New()
	g.Add(e.deleg("[M -> A.reader] A"), nil)
	g.Add(e.deleg("[N -> B.member] B"), nil)
	g.Add(e.deleg("[B.member -> A.reader] A"), nil)
	proofs := g.EnumerateTo(e.role("A.reader"), Options{At: testNow})
	// Expected proofs ending at A.reader: [M->reader], [B.member->reader],
	// [N->B.member->reader].
	if len(proofs) != 3 {
		t.Fatalf("EnumerateTo = %d proofs, want 3", len(proofs))
	}
	for _, p := range proofs {
		if p.Object != e.role("A.reader") {
			t.Fatalf("proof object = %v", p.Object)
		}
		if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
			t.Fatalf("proof invalid: %v", err)
		}
	}
}

func TestEnumerateWithConstraints(t *testing.T) {
	e := newEnv(t, "A", "M")
	g := New()
	g.Add(e.deleg("[M -> A.cheap with A.BW <= 10] A"), nil)
	g.Add(e.deleg("[M -> A.premium with A.BW <= 500] A"), nil)
	bw := core.AttributeRef{Namespace: e.id("A").ID(), Name: "BW"}
	cons := []core.Constraint{{Attr: bw, Base: math.Inf(1), Minimum: 100}}
	proofs := g.EnumerateFrom(e.subject("M"), Options{At: testNow, Constraints: cons})
	if len(proofs) != 1 || proofs[0].Object.Name != "premium" {
		t.Fatalf("EnumerateFrom with constraints = %v", proofs)
	}
	proofsTo := g.EnumerateTo(e.role("A.cheap"), Options{At: testNow, Constraints: cons})
	if len(proofsTo) != 0 {
		t.Fatalf("EnumerateTo cheap with constraints = %d proofs, want 0", len(proofsTo))
	}
}

func TestSupportProofsTravelWithEdges(t *testing.T) {
	e := newEnv(t, "A", "B", "M")
	g := New()
	// Third-party delegation by B of role A.reader, supported by
	// A's assignment delegations.
	dMS := e.deleg("[B -> A.assigners] A")
	dAsg := e.deleg("[A.assigners -> A.reader'] A")
	sup, err := core.NewProof(core.ProofStep{Delegation: dMS}, core.ProofStep{Delegation: dAsg})
	if err != nil {
		t.Fatal(err)
	}
	d3 := e.deleg("[M -> A.reader] B")
	g.Add(d3, []*core.Proof{sup})
	p, err := g.FindDirect(e.subject("M"), e.role("A.reader"), Options{At: testNow})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(core.ValidateOptions{At: testNow}); err != nil {
		t.Fatalf("proof with support should validate: %v", err)
	}
	if len(p.Steps[0].Support) != 1 {
		t.Fatal("support proof lost in graph round trip")
	}
}
