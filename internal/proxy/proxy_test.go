package proxy

import (
	"context"
	"errors"
	"testing"
	"time"

	"drbac/internal/clock"
	"drbac/internal/core"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

var testStart = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

type env struct {
	t    *testing.T
	ids  map[string]*core.Identity
	dir  *core.MemDirectory
	clk  *clock.Fake
	net  *transport.MemNetwork
	home *wallet.Wallet
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{
		t:   t,
		ids: make(map[string]*core.Identity),
		dir: core.NewDirectory(),
		clk: clock.NewFake(testStart),
		net: transport.NewMemNetwork(),
	}
	for i, name := range []string{"Org", "ProxyOp", "User", "Client"} {
		seed := make([]byte, 32)
		seed[0] = byte(i + 1)
		id, err := core.IdentityFromSeed(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		e.ids[name] = id
		e.dir.Add(id.Entity())
	}
	// Upstream home wallet.
	e.home = wallet.New(wallet.Config{Owner: e.ids["Org"], Clock: e.clk, Directory: e.dir})
	ln, err := e.net.Listen("home", e.ids["Org"])
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(e.home, ln)
	t.Cleanup(srv.Close)
	return e
}

func (e *env) deleg(text string) *core.Delegation {
	e.t.Helper()
	parsed, err := core.ParseDelegation(text, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	var issuer *core.Identity
	for _, id := range e.ids {
		if id.ID() == parsed.Issuer.ID() {
			issuer = id
		}
	}
	d, err := core.Issue(issuer, parsed.Template, e.clk.Now())
	if err != nil {
		e.t.Fatal(err)
	}
	return d
}

func (e *env) query(name string) wallet.Query {
	e.t.Helper()
	s, err := core.ParseSubject("User", e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	r, err := core.ParseRole("Org."+name, e.dir)
	if err != nil {
		e.t.Fatal(err)
	}
	return wallet.Query{Subject: s, Object: r}
}

// newProxy builds a proxy over a fresh cache wallet connected to the home.
func (e *env) newProxy(ttl time.Duration) (*Proxy, *wallet.Wallet) {
	e.t.Helper()
	local := wallet.New(wallet.Config{Owner: e.ids["ProxyOp"], Clock: e.clk, Directory: e.dir})
	up, err := remote.Dial(context.Background(), e.net.Dialer(e.ids["ProxyOp"]), "home")
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(up.Close)
	p, err := New(Config{Local: local, Upstream: up, TTL: ttl})
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(p.Close)
	return p, local
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestPullThroughAndCacheHit(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}
	p, local := e.newProxy(time.Minute)

	proof, err := p.QueryDirect(context.Background(), e.query("member"))
	if err != nil {
		t.Fatalf("pull-through: %v", err)
	}
	if err := proof.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatal(err)
	}
	if !local.Contains(d.ID()) {
		t.Fatal("credential not cached")
	}
	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatalf("cache hit: %v", err)
	}
	hits, pulls := p.Stats()
	if hits != 1 || pulls != 1 {
		t.Fatalf("hits=%d pulls=%d, want 1/1", hits, pulls)
	}
}

func TestMissOnBothSides(t *testing.T) {
	e := newEnv(t)
	p, _ := e.newProxy(time.Minute)
	if _, err := p.QueryDirect(context.Background(), e.query("member")); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("want ErrNoProof, got %v", err)
	}
}

func TestUpstreamRevocationPropagatesToCache(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}
	p, local := e.newProxy(time.Minute)
	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatal(err)
	}

	revoked := make(chan struct{}, 1)
	unsub := local.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind == subs.Revoked {
			revoked <- struct{}{}
		}
	})
	defer unsub()

	if err := e.home.Revoke(d.ID(), e.ids["Org"].ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-revoked:
	case <-time.After(2 * time.Second):
		t.Fatal("revocation did not reach the cache")
	}
	if _, err := p.QueryDirect(context.Background(), e.query("member")); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("revoked credential still served: %v", err)
	}
}

func TestIrrelevantUpdatesProduceNoTraffic(t *testing.T) {
	e := newEnv(t)
	cached := e.deleg("[User -> Org.member] Org")
	other := e.deleg("[User -> Org.unrelated] Org")
	if err := e.home.Publish(cached); err != nil {
		t.Fatal(err)
	}
	if err := e.home.Publish(other); err != nil {
		t.Fatal(err)
	}
	p, _ := e.newProxy(time.Minute)
	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatal(err)
	}

	// Revoking a credential this cache never pulled must not generate a
	// single frame (per-delegation subscriptions — the §6 contrast with
	// CRL distribution).
	before := e.net.Stats()
	if err := e.home.Revoke(other.ID(), e.ids["Org"].ID()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	after := e.net.Stats()
	if after.Messages != before.Messages {
		t.Fatalf("irrelevant revocation caused %d messages", after.Messages-before.Messages)
	}
}

func TestServeDownstreamPullThroughAndFanout(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}
	p, _ := e.newProxy(time.Minute)
	ln, err := e.net.Listen("edge", e.ids["ProxyOp"])
	if err != nil {
		t.Fatal(err)
	}
	srv := p.Serve(ln)
	defer srv.Close()

	// Several downstream clients query and subscribe at the proxy.
	const clients = 4
	notified := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		c, err := remote.Dial(context.Background(), e.net.Dialer(e.ids["Client"]), "edge")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		q := e.query("member")
		proof, err := c.QueryDirect(context.Background(), q.Subject, q.Object, nil, 0)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if err := proof.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Subscribe(context.Background(), d.ID(), func(ev subs.Event) {
			if ev.Kind == subs.Revoked {
				notified <- struct{}{}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly one upstream subscription backs all downstream interest.
	if e.home.Subscribers(d.ID()) != 1 {
		t.Fatalf("home subscribers = %d, want 1 (the proxy)", e.home.Subscribers(d.ID()))
	}

	// One upstream revocation fans out to every downstream client.
	if err := e.home.Revoke(d.ID(), e.ids["Org"].ID()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		select {
		case <-notified:
		case <-time.After(2 * time.Second):
			t.Fatalf("client %d never notified", i)
		}
	}
}

func TestCacheTTLRenewal(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.InsertCached(d, nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	p, local := e.newProxy(30 * time.Second)
	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatal(err)
	}
	renewed := make(chan struct{}, 1)
	unsub := local.Subscribe(d.ID(), func(ev subs.Event) {
		if ev.Kind == subs.Renewed {
			select {
			case renewed <- struct{}{}:
			default:
			}
		}
	})
	defer unsub()
	e.clk.Advance(20 * time.Second)
	if !e.home.RenewCached(d.ID(), time.Hour) {
		t.Fatal("home renew failed")
	}
	select {
	case <-renewed:
	case <-time.After(2 * time.Second):
		t.Fatal("renewal did not propagate")
	}
	e.clk.Advance(15 * time.Second) // t=35s, past original 30s TTL
	if n := local.SweepStaleCache(); n != 0 {
		t.Fatalf("renewed cache entry swept: %d", n)
	}
}

func TestCloseStopsSubscriptions(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}
	p, _ := e.newProxy(time.Minute)
	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if e.home.Subscribers(d.ID()) != 0 {
		t.Fatalf("home subscribers = %d after close", e.home.Subscribers(d.ID()))
	}
	if _, err := p.QueryDirect(context.Background(), e.query("other")); err == nil {
		t.Fatal("closed proxy should not pull through")
	}
}

// A two-level hierarchy — edge proxy behind a regional proxy behind the
// home — pulls through both levels and propagates a revocation down the
// chain, with exactly one subscription per level.
func TestTwoLevelHierarchy(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}

	// Level 1: regional proxy over the home.
	regional, regionalWallet := e.newProxy(time.Minute)
	ln1, err := e.net.Listen("regional", e.ids["ProxyOp"])
	if err != nil {
		t.Fatal(err)
	}
	srv1 := regional.Serve(ln1)
	defer srv1.Close()

	// Level 2: edge proxy over the regional proxy.
	edgeWallet := wallet.New(wallet.Config{Owner: e.ids["ProxyOp"], Clock: e.clk, Directory: e.dir})
	up2, err := remote.Dial(context.Background(), e.net.Dialer(e.ids["ProxyOp"]), "regional")
	if err != nil {
		t.Fatal(err)
	}
	defer up2.Close()
	edge, err := New(Config{Local: edgeWallet, Upstream: up2, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	// The query pulls through edge -> regional -> home.
	proof, err := edge.QueryDirect(context.Background(), e.query("member"))
	if err != nil {
		t.Fatalf("two-level pull-through: %v", err)
	}
	if err := proof.Validate(core.ValidateOptions{At: e.clk.Now()}); err != nil {
		t.Fatal(err)
	}
	if !regionalWallet.Contains(d.ID()) || !edgeWallet.Contains(d.ID()) {
		t.Fatal("credential not cached at both levels")
	}
	// One subscription per level: the home sees only the regional proxy.
	if n := e.home.Subscribers(d.ID()); n != 1 {
		t.Fatalf("home subscribers = %d, want 1", n)
	}

	// A revocation at the home cascades through both caches.
	if err := e.home.Revoke(d.ID(), e.ids["Org"].ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for edgeWallet.Contains(d.ID()) || regionalWallet.Contains(d.ID()) {
		if time.Now().After(deadline) {
			t.Fatal("revocation did not cascade through the hierarchy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := edge.QueryDirect(context.Background(), e.query("member")); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("edge still serves revoked credential: %v", err)
	}
}

// TestFrontCacheServesRepeatsAndStaysCoherent pins the proxy's front answer
// cache: repeated queries are memoized hits, and an upstream revocation
// propagated through the local wallet's push channel kills the memoized
// answer before the next query returns.
func TestFrontCacheServesRepeatsAndStaysCoherent(t *testing.T) {
	e := newEnv(t)
	d := e.deleg("[User -> Org.member] Org")
	if err := e.home.Publish(d); err != nil {
		t.Fatal(err)
	}
	p, _ := e.newProxy(time.Minute)

	if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
		t.Fatalf("pull-through: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.QueryDirect(context.Background(), e.query("member")); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
	cs := p.CacheStats()
	if cs.Hits < 3 || cs.Entries != 1 {
		t.Fatalf("front cache stats = %+v, want >=3 hits and 1 entry", cs)
	}

	// Revoke upstream; the push propagates to the local wallet, whose
	// wildcard channel must invalidate the front entry.
	if err := e.home.Revoke(d.ID(), e.ids["Org"].ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.CacheStats().Entries != 0 {
		if time.Now().After(deadline) {
			t.Fatal("front cache entry not invalidated by upstream revocation")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.QueryDirect(context.Background(), e.query("member")); !errors.Is(err, core.ErrNoProof) {
		t.Fatalf("query after revocation = %v, want ErrNoProof", err)
	}
}
