// Package proxy implements the hierarchical validation caches sketched in
// §6: "delegation subscriptions permit construction of hierarchical
// directory-based caches of trusted online validation agents that can
// avoid communication of updates irrelevant to particular caches."
//
// A Proxy serves its own wallet to downstream clients and pulls direct-
// query misses through from an upstream wallet, caching the fetched
// credentials with a TTL and holding exactly one upstream delegation
// subscription per cached credential. Consequences measured by EXP-S5:
//
//   - upstream load scales with the proxy's cached set, not with the
//     downstream population (one upstream push fans out locally);
//   - upstream status changes for credentials this cache never pulled
//     produce no traffic at all, unlike CRL-style distribution.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"drbac/internal/core"
	"drbac/internal/obs"
	"drbac/internal/peer"
	"drbac/internal/remote"
	"drbac/internal/subs"
	"drbac/internal/transport"
	"drbac/internal/wallet"
)

// Config parameterizes a proxy.
type Config struct {
	// Local is the proxy's cache wallet, served to downstream clients.
	Local *wallet.Wallet
	// Upstream is a fixed connection the wallet misses are pulled through
	// from. Either Upstream or Peers+UpstreamAddr must be set.
	Upstream *remote.Client
	// Peers, with UpstreamAddr, pulls misses through a managed pool
	// instead of a fixed connection: the proxy survives an upstream
	// restart by redialing lazily and re-establishing its delegation
	// subscriptions on the fresh connection.
	Peers *peer.Manager
	// UpstreamAddr is the upstream wallet's address in Peers — optionally a
	// comma-separated replica group ("primary,replica1,…"); pulls and
	// subscriptions fail over within the group (§9 read scaling).
	UpstreamAddr string
	// TTL is the coherence window for pulled credentials; zero caches
	// permanently (credentials still drop on upstream revocation).
	TTL time.Duration
	// Obs, if non-nil, receives proxy hit/pull metrics and logs; when nil,
	// the local cache wallet's Obs is used instead.
	Obs *obs.Obs
}

// Proxy is a pull-through, subscription-coherent wallet cache.
type Proxy struct {
	cfg Config
	// front memoizes whole answers at the proxy boundary — the same
	// ProofCache type the wallet embeds, kept coherent by a wildcard
	// subscription on the local wallet: any publish/revoke/expiry/TTL-lapse
	// event there kills the affected memoized answers first.
	front    *wallet.ProofCache
	unsubAll func()
	obs      *obs.Obs
	// mHits/mPulls mirror the hits/pulls counters into the metrics registry
	// (nil, hence no-op, when uninstrumented).
	mHits  *obs.Counter
	mPulls *obs.Counter

	mu      sync.Mutex
	cancels map[core.DelegationID]func()
	// lastUpstream is the pooled client the current subscriptions live on;
	// a different pointer from the pool means the upstream connection was
	// replaced and every subscription must be re-established.
	lastUpstream *remote.Client
	closed       bool
	// Pulls counts upstream pull-through queries (cache misses).
	pulls int
	// Hits counts direct queries answered from the cache.
	hits int
}

// New builds a proxy over a local cache wallet and an upstream connection
// (fixed, or pooled via Peers+UpstreamAddr).
func New(cfg Config) (*Proxy, error) {
	if cfg.Local == nil {
		return nil, errors.New("proxy: Local is required")
	}
	if cfg.Upstream == nil && (cfg.Peers == nil || cfg.UpstreamAddr == "") {
		return nil, errors.New("proxy: either Upstream or Peers+UpstreamAddr is required")
	}
	o := cfg.Obs
	if o == nil {
		o = cfg.Local.Obs()
	}
	p := &Proxy{
		cfg:     cfg,
		front:   wallet.NewProofCache(0),
		obs:     o,
		mHits:   o.Counter("drbac_proxy_hits_total"),
		mPulls:  o.Counter("drbac_proxy_pulls_total"),
		cancels: make(map[core.DelegationID]func()),
	}
	p.unsubAll = cfg.Local.SubscribeAll(func(ev subs.Event) {
		switch ev.Kind {
		case subs.Revoked, subs.Expired, subs.Stale:
			p.front.InvalidateDelegation(ev.Delegation)
		}
	})
	return p, nil
}

// Close cancels every upstream subscription.
func (p *Proxy) Close() {
	p.mu.Lock()
	cancels := p.cancels
	p.cancels = make(map[core.DelegationID]func())
	p.closed = true
	p.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	p.unsubAll()
}

// Stats reports cache effectiveness.
func (p *Proxy) Stats() (hits, pulls int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.pulls
}

// CacheStats reports the front answer cache's counters.
func (p *Proxy) CacheStats() wallet.CacheStats { return p.front.Stats() }

// upstream returns the connection pulls and subscriptions ride on. With a
// pooled upstream it redials through the pool as needed; when the pool
// hands back a different connection than the subscriptions were created on,
// every tracked delegation is re-subscribed there first — a push dropped
// while the upstream was down would otherwise go unnoticed forever.
func (p *Proxy) upstream(ctx context.Context) (*remote.Client, error) {
	if p.cfg.Upstream != nil {
		return p.cfg.Upstream, nil
	}
	c, addr, err := p.cfg.Peers.GetAny(ctx, remote.SplitAddrs(p.cfg.UpstreamAddr))
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	replaced := p.lastUpstream != nil && p.lastUpstream != c
	p.lastUpstream = c
	var ids []core.DelegationID
	if replaced {
		ids = make([]core.DelegationID, 0, len(p.cancels))
		for id := range p.cancels {
			ids = append(ids, id)
		}
		// The old connection is gone and its cancel funcs with it; the new
		// subscriptions below repopulate the slots.
		p.cancels = make(map[core.DelegationID]func())
	}
	p.mu.Unlock()
	if replaced {
		p.obs.Log().Info("proxy upstream reconnected; re-establishing subscriptions",
			"addr", addr, "subscriptions", len(ids))
		for _, id := range ids {
			if err := p.ensureSubscribed(ctx, c, id); err != nil {
				p.obs.Log().Warn("proxy resubscribe failed",
					"delegation", id.Short(), "error", err)
			}
		}
	}
	return c, nil
}

// QueryDirect answers from the front answer cache or the cache wallet,
// pulling through from upstream on a miss. The proxy never memoizes
// negative answers: an unprovable query must retry upstream, where new
// credentials may have appeared.
func (p *Proxy) QueryDirect(ctx context.Context, q wallet.Query) (*core.Proof, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.Ctx = ctx
	// Like the wallet, bypass memoization when the caller measures search
	// effort.
	useFront := q.Stats == nil
	var key string
	if useFront {
		key = wallet.CacheKey(q.Subject, q.Object, q.Constraints)
		if proof, _, ok := p.front.Lookup(key, p.cfg.Local.Now(), p.cfg.Local.IsRevoked); ok {
			p.mu.Lock()
			p.hits++
			p.mu.Unlock()
			p.mHits.Inc()
			return proof, nil
		}
	}
	if proof, err := p.cfg.Local.QueryDirect(q); err == nil {
		if useFront {
			p.front.Put(key, proof)
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		p.mHits.Inc()
		return proof, nil
	} else if !errors.Is(err, core.ErrNoProof) {
		return nil, err
	}
	p.mu.Lock()
	p.pulls++
	p.mu.Unlock()
	p.mPulls.Inc()
	p.obs.Log().Debug("proxy pull-through",
		"trace", q.TraceID, "subject", q.Subject.String(), "object", q.Object.String())

	// The pull carries the caller's trace and span IDs upstream, so a
	// downstream query that misses the whole hierarchy reads as one trace
	// with the upstream serve span nested under this pull.
	psp := obs.SpanFromContext(ctx).StartChild("proxy.pull",
		"subject", q.Subject.String(), "object", q.Object.String())
	tc := psp.Context()
	if tc.TraceID == "" {
		tc.TraceID = q.TraceID
	}
	up, err := p.upstream(ctx)
	if err != nil {
		psp.Fail(err)
		psp.End("ok", false)
		return nil, err
	}
	proof, err := up.QueryDirectTraced(ctx, tc, q.Subject, q.Object, q.Constraints, q.Direction)
	if err != nil {
		if !errors.Is(err, core.ErrNoProof) {
			psp.Fail(err)
		}
		psp.End("ok", false)
		return nil, err
	}
	psp.End("ok", true, "steps", len(proof.Steps))
	asp := obs.SpanFromContext(ctx).StartChild("proxy.admit", "steps", len(proof.Steps))
	if err := p.admit(ctx, up, proof); err != nil {
		asp.Fail(err)
		asp.End()
		return nil, fmt.Errorf("proxy: admit pulled proof: %w", err)
	}
	asp.End()
	// Serve from the cache so the answer reflects local validation state.
	served, err := p.cfg.Local.QueryDirect(q)
	if err != nil {
		return nil, err
	}
	if useFront {
		p.front.Put(key, served)
	}
	return served, nil
}

// admit inserts a pulled proof's delegations into the cache and ensures one
// upstream subscription per credential.
func (p *Proxy) admit(ctx context.Context, up *remote.Client, proof *core.Proof) error {
	// Warm the signature memo for the whole pulled proof tree before the
	// step-by-step InsertCached validations below.
	core.PrimeDelegations(p.cfg.Local.SigVerifier(), proof.Delegations())
	for _, st := range proof.Steps {
		d := st.Delegation
		id := d.ID()
		if !p.cfg.Local.Contains(id) {
			if err := p.cfg.Local.InsertCached(d, st.Support, p.cfg.TTL); err != nil {
				return err
			}
		}
		if err := p.ensureSubscribed(ctx, up, id); err != nil {
			return err
		}
	}
	return nil
}

// ensureSubscribed registers exactly one upstream subscription for id on up.
func (p *Proxy) ensureSubscribed(ctx context.Context, up *remote.Client, id core.DelegationID) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("proxy: closed")
	}
	if _, ok := p.cancels[id]; ok {
		p.mu.Unlock()
		return nil
	}
	// Reserve the slot before the network call so concurrent admits of the
	// same credential subscribe once.
	p.cancels[id] = func() {}
	p.mu.Unlock()

	cancel, err := up.Subscribe(ctx, id, func(ev subs.Event) {
		switch ev.Kind {
		case subs.Revoked:
			p.cfg.Local.AcceptRevocation(ev.Delegation)
		case subs.Expired, subs.Stale:
			p.cfg.Local.SweepExpired()
			p.cfg.Local.SweepStaleCache()
		case subs.Renewed:
			if p.cfg.TTL > 0 {
				p.cfg.Local.RenewCached(ev.Delegation, p.cfg.TTL)
			}
		}
	})
	if err != nil {
		p.mu.Lock()
		delete(p.cancels, id)
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	p.cancels[id] = cancel
	p.mu.Unlock()
	return nil
}

// Serve exposes the proxy to downstream clients on ln: cache queries hit
// the local wallet; misses pull through upstream; downstream delegation
// subscriptions attach to the local wallet and fire when upstream updates
// propagate.
func (p *Proxy) Serve(ln transport.Listener) *remote.Server {
	return remote.ServeOptions(p.cfg.Local, ln, remote.Options{
		DirectFallback: p.QueryDirect,
		Obs:            p.obs,
	})
}
