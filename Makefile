# drbac — build, test, and experiment targets.

GO ?= go

.PHONY: all check build vet test test-race race cover bench fuzz sim examples clean

all: build vet test

# The default verification gate: build, vet, tests, and the race detector.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test -fuzz=FuzzParseDelegation -fuzztime=30s ./internal/core

# Regenerate every experiment table in EXPERIMENTS.md.
sim:
	$(GO) run ./cmd/coalition-sim -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attributes
	$(GO) run ./examples/coalition
	$(GO) run ./examples/monitoring
	$(GO) run ./examples/resource-server

clean:
	$(GO) clean ./...
