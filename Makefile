# drbac — build, test, and experiment targets.

GO ?= go

.PHONY: all check build vet staticcheck test test-race race cover cover-check bench bench-smoke bench-json bench-diff fuzz sim sim-cluster-smoke sim-dht-smoke examples clean

# Aggregate coverage floor enforced by cover-check (CI). Raise it as
# coverage grows; never lower it to admit an under-tested change.
COVER_FLOOR ?= 70.0

all: build vet test

# The default verification gate: build, vet, staticcheck, tests, the
# race detector, and the bounded cluster and DHT smokes.
check: build vet staticcheck test test-race sim-cluster-smoke sim-dht-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when it is on PATH, and skips with a notice otherwise so
# `make check` stays usable on machines without it. CI installs it and so
# always enforces this gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI enforces it)"; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

cover:
	$(GO) test -cover ./...

# Fail if total statement coverage drops below COVER_FLOOR percent.
cover-check:
	$(GO) test -coverprofile=cover.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/{sub(/%/,"",$$3); print $$3}'); \
	rm -f cover.out; \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(t+0 >= f+0)}' || \
		{ echo "coverage $$total% is below floor $(COVER_FLOOR)%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem .

# Compile every benchmark and run each for exactly one iteration: catches
# benchmarks that no longer build or crash immediately, without paying for a
# real measurement run. CI runs this on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# --- benchmark-regression gate --------------------------------------------
#
# bench-json runs the root-package benchmarks BENCH_COUNT times and distills
# the output to BENCH_<utc-date>.json via cmd/benchdiff -emit: one record per
# benchmark holding the minimum ns/op across samples (minima are far less
# noisy than means on shared CI hosts) plus B/op and allocs/op.
#
# bench-diff compares that file against the committed BENCH_baseline.json
# and exits nonzero when any benchmark present in both regresses more than
# BENCH_THRESHOLD percent in ns/op, or more than BENCH_ALLOC_THRESHOLD
# percent in allocs/op (allocation counts are deterministic per build, so
# that gate is far tighter than the timing one). New and removed benchmarks
# are reported but never fail the gate. CI runs both; the gate is advisory
# on pull requests and blocking on main. To accept an intended slowdown (or
# bank an optimization), regenerate the baseline on a quiet machine and
# commit it:
#
#	make bench-json && cp BENCH_$$(date -u +%Y-%m-%d).json BENCH_baseline.json
BENCH_COUNT ?= 3
BENCH_THRESHOLD ?= 25
BENCH_ALLOC_THRESHOLD ?= 5
BENCH_OUT = BENCH_$(shell date -u +%Y-%m-%d).json

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchdiff -emit -out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

bench-diff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json \
		-current $(BENCH_OUT) -threshold $(BENCH_THRESHOLD) \
		-alloc-threshold $(BENCH_ALLOC_THRESHOLD)

fuzz:
	$(GO) test -fuzz=FuzzParseDelegation -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzLogRecordDecode -fuzztime=30s ./internal/logstore
	$(GO) test -fuzz=FuzzDHTMessageDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzGossipMessageDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzBinaryCodecRoundTrip -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzBinaryFrameDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzRecordVerify -fuzztime=30s ./internal/dht

# Regenerate every experiment table in EXPERIMENTS.md.
sim:
	$(GO) run ./cmd/coalition-sim -exp all

# Bounded-time end-to-end smoke over a 4-shard cluster (§12): routed
# publishes, a scatter-gather object query, a cross-shard proof, and a
# mid-traffic split. The runner self-bounds at 60s; finishes in well
# under a second on a healthy build.
sim-cluster-smoke:
	$(GO) run ./cmd/coalition-sim -exp clustersmoke

# Bounded-time end-to-end smoke over a 6-wallet DHT coalition (§13):
# bootstrap off one seed, announce, resolve a three-wallet chain with no
# static addresses, survive the seed dying and a home moving. The runner
# self-bounds at 120s; finishes in well under a second on a healthy build.
sim-dht-smoke:
	$(GO) run ./cmd/coalition-sim -exp dhtsmoke

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attributes
	$(GO) run ./examples/coalition
	$(GO) run ./examples/monitoring
	$(GO) run ./examples/resource-server

clean:
	$(GO) clean ./...
