package drbac

import (
	"drbac/internal/disco"
)

// DisCo-layer re-exports: the application-facing access-control surface the
// paper's §1 "Project Context" describes — protected-resource registration
// and monitored sessions with modulated service levels.
type (
	// Guard regulates access to registered resources.
	Guard = disco.Guard
	// GuardConfig parameterizes a Guard.
	GuardConfig = disco.Config
	// ProtectedResource describes a dRBAC-guarded capability.
	ProtectedResource = disco.Resource
	// Session is one principal's monitored access to one resource.
	Session = disco.Session
	// SessionEvent notifies the application of session changes.
	SessionEvent = disco.SessionEvent
	// SessionEventKind classifies session events.
	SessionEventKind = disco.SessionEventKind
)

// Session event kinds.
const (
	SessionReauthorized = disco.SessionReauthorized
	SessionTerminated   = disco.SessionTerminated
)

// NewGuard builds a resource guard over a wallet (and optional discovery
// agent).
func NewGuard(cfg GuardConfig) (*Guard, error) { return disco.NewGuard(cfg) }
