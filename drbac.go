// Package drbac is a Go implementation of dRBAC — Distributed Role-Based
// Access Control for Dynamic Coalition Environments (Freudenthal, Pesin,
// Port, Keenan, Karamcheti; ICDCS 2002).
//
// dRBAC is a decentralized trust-management and access-control system for
// coalitions spanning multiple administrative domains. Entities are PKI
// identities defining namespaces; roles are names in a namespace;
// delegations are signed certificates [Subject → Object] Issuer that grant
// the subject the permissions of the object role. Its three distinguishing
// features, all implemented here:
//
//   - Third-party delegation: an authorized entity delegates roles from
//     another entity's namespace, backed by an explicit, recursively
//     validated right-of-assignment support proof.
//   - Valued attributes: scalar modulation of access rights along
//     delegation chains with monotone operators (-=, *=, <=).
//   - Continuous monitoring: proof monitors backed by delegation
//     subscriptions push credential status changes to relying parties over
//     long-lived interactions.
//
// The package also provides wallets (credential repositories answering
// direct, subject, and object queries with proofs), an authenticated
// transport, remote wallet serving, and distributed delegation-chain
// discovery driven by discovery tags.
//
// # Quick start
//
//	bigISP, _ := drbac.NewIdentity("BigISP")
//	maria, _ := drbac.NewIdentity("Maria")
//	dir := drbac.NewDirectory(bigISP.Entity(), maria.Entity())
//
//	parsed, _ := drbac.ParseDelegation("[Maria -> BigISP.member] BigISP", dir)
//	d, _ := drbac.Issue(bigISP, parsed.Template, time.Now())
//
//	w := drbac.NewWallet(drbac.WalletConfig{Directory: dir})
//	_ = w.Publish(d)
//	proof, _ := w.QueryDirect(drbac.Query{
//		Subject: drbac.SubjectEntity(maria.ID()),
//		Object:  drbac.NewRole(bigISP.ID(), "member"),
//	})
//	fmt.Println(drbac.Printer{Dir: dir}.Proof(proof))
//
// See examples/ for runnable programs covering the paper's Table 1/2
// delegation forms, the §5 coalition case study over real TCP wallets, and
// continuous monitoring with revocation push.
package drbac

import (
	"time"

	"drbac/internal/core"
)

// Core model re-exports. These aliases are the stable public names for the
// dRBAC model types; see the internal/core documentation for semantics.
type (
	// Entity is a principal or resource: a public key plus a display name.
	Entity = core.Entity
	// EntityID is an entity's key fingerprint.
	EntityID = core.EntityID
	// Identity is an entity with its private key; it can issue delegations.
	Identity = core.Identity
	// Role is a name in an entity's namespace; ticks mark assignment rights.
	Role = core.Role
	// Subject is a delegation grantee: an entity or a role.
	Subject = core.Subject
	// Delegation is a signed certificate [Subject → Object] Issuer.
	Delegation = core.Delegation
	// DelegationID is a delegation's content hash.
	DelegationID = core.DelegationID
	// Template carries caller-controlled fields for Issue.
	Template = core.Template
	// Parsed is the result of parsing the concrete delegation syntax.
	Parsed = core.Parsed
	// Kind classifies delegations as self-certified or third-party.
	Kind = core.Kind
	// Proof is a delegation chain with recursive support proofs.
	Proof = core.Proof
	// ProofStep is one delegation plus its support proofs.
	ProofStep = core.ProofStep
	// ValidateOptions parameterizes proof validation.
	ValidateOptions = core.ValidateOptions
	// Operator is a valued-attribute operator (-=, *=, <=).
	Operator = core.Operator
	// AttributeRef names a valued attribute in a namespace.
	AttributeRef = core.AttributeRef
	// AttributeSetting is one "with" clause of a delegation.
	AttributeSetting = core.AttributeSetting
	// Modifier is one attribute's accumulated chain effect.
	Modifier = core.Modifier
	// Aggregate maps attributes to accumulated modifiers along a chain.
	Aggregate = core.Aggregate
	// Constraint is a valued-attribute requirement on a query.
	Constraint = core.Constraint
	// DiscoveryTag locates a name's home wallet and search flags.
	DiscoveryTag = core.DiscoveryTag
	// SubjectFlag is a tag's ternary subject-discovery flag.
	SubjectFlag = core.SubjectFlag
	// ObjectFlag is a tag's ternary object-discovery flag.
	ObjectFlag = core.ObjectFlag
	// Directory resolves entity names for parsing and display.
	Directory = core.Directory
	// MemDirectory is an in-memory Directory.
	MemDirectory = core.MemDirectory
	// Printer renders model objects with names resolved.
	Printer = core.Printer
)

// Operator, kind, and discovery-flag constants.
const (
	OpSubtract = core.OpSubtract
	OpMultiply = core.OpMultiply
	OpMinimum  = core.OpMinimum

	KindSelfCertified = core.KindSelfCertified
	KindThirdParty    = core.KindThirdParty

	SubjectNone   = core.SubjectNone
	SubjectStore  = core.SubjectStore
	SubjectSearch = core.SubjectSearch
	ObjectNone    = core.ObjectNone
	ObjectStore   = core.ObjectStore
	ObjectSearch  = core.ObjectSearch
)

// Sentinel errors.
var (
	// ErrNoProof reports that no authorizing proof exists.
	ErrNoProof = core.ErrNoProof
	// ErrRevoked reports a revoked delegation in a proof.
	ErrRevoked = core.ErrRevoked
	// ErrProofDepth reports support-proof recursion beyond the limit.
	ErrProofDepth = core.ErrProofDepth
)

// NewIdentity generates a fresh identity with a display name.
func NewIdentity(name string) (*Identity, error) { return core.NewIdentity(name) }

// IdentityFromSeed derives a deterministic identity from a 32-byte seed.
func IdentityFromSeed(name string, seed []byte) (*Identity, error) {
	return core.IdentityFromSeed(name, seed)
}

// NewDirectory builds an in-memory name directory.
func NewDirectory(entities ...Entity) *MemDirectory { return core.NewDirectory(entities...) }

// NewRole builds the role ns.name.
func NewRole(ns EntityID, name string) Role { return core.NewRole(ns, name) }

// SubjectEntity builds an entity subject.
func SubjectEntity(id EntityID) Subject { return core.SubjectEntity(id) }

// SubjectRole builds a role subject.
func SubjectRole(r Role) Subject { return core.SubjectRole(r) }

// Issue creates and signs a delegation.
func Issue(issuer *Identity, tmpl Template, now time.Time) (*Delegation, error) {
	return core.Issue(issuer, tmpl, now)
}

// ParseDelegation parses the paper's concrete syntax, e.g.
// "[Maria -> BigISP.member] Mark".
func ParseDelegation(text string, dir Directory) (*Parsed, error) {
	return core.ParseDelegation(text, dir)
}

// ParseRole parses "Entity.name", "Entity.name'", or
// "Entity.attr <op>= '".
func ParseRole(text string, dir Directory) (Role, error) { return core.ParseRole(text, dir) }

// ParseSubject parses an entity name or role.
func ParseSubject(text string, dir Directory) (Subject, error) {
	return core.ParseSubject(text, dir)
}

// NewProof assembles a proof from ordered steps.
func NewProof(steps ...ProofStep) (*Proof, error) { return core.NewProof(steps...) }

// NewAggregate returns an empty attribute aggregate.
func NewAggregate() Aggregate { return core.NewAggregate() }

// DisplayID renders an entity ID through a directory.
func DisplayID(dir Directory, id EntityID) string { return core.DisplayID(dir, id) }
